//! How a [`Scenario`] becomes an execution: pluggable executors.

use crate::{Scenario, ScenarioOutcome};
use rendezvous_core::{CoreError, Label, RendezvousAlgorithm};
use rendezvous_sim::{AgentBehavior, AgentSpec, MeetingCondition, SimError, Simulation};
use std::fmt;

/// An executor error: configuration or simulation failure. Both indicate a
/// harness bug (the adversary only enumerates valid configurations), so the
/// sweep fails fast instead of folding poisoned values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunnerError(String);

impl RunnerError {
    /// Wraps any error message.
    pub fn new(msg: impl Into<String>) -> Self {
        RunnerError(msg.into())
    }
}

impl fmt::Display for RunnerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario execution failed: {}", self.0)
    }
}

impl std::error::Error for RunnerError {}

impl From<SimError> for RunnerError {
    fn from(e: SimError) -> Self {
        RunnerError(e.to_string())
    }
}

impl From<CoreError> for RunnerError {
    fn from(e: CoreError) -> Self {
        RunnerError(e.to_string())
    }
}

/// Turns one scenario into one measured outcome. Implementations must be
/// [`Sync`]: the [`Runner`](crate::Runner) shares them across threads.
pub trait Executor: Sync {
    /// Executes `scenario` and reports what happened.
    ///
    /// # Errors
    ///
    /// Any configuration or simulation error, which aborts the sweep.
    fn run(&self, scenario: &Scenario) -> Result<ScenarioOutcome, RunnerError>;
}

/// Executes scenarios against a [`RendezvousAlgorithm`]: each agent runs
/// the schedule the algorithm compiles for its label.
pub struct AlgorithmExecutor<'a> {
    algorithm: &'a dyn RendezvousAlgorithm,
}

impl<'a> AlgorithmExecutor<'a> {
    /// Wraps an algorithm.
    #[must_use]
    pub fn new(algorithm: &'a dyn RendezvousAlgorithm) -> Self {
        AlgorithmExecutor { algorithm }
    }
}

impl Executor for AlgorithmExecutor<'_> {
    fn run(&self, scenario: &Scenario) -> Result<ScenarioOutcome, RunnerError> {
        let label = |v: u64| {
            Label::new(v).ok_or_else(|| RunnerError::new(format!("label {v} is not positive")))
        };
        let a = self
            .algorithm
            .agent(label(scenario.first_label)?, scenario.start_a)?;
        let b = self
            .algorithm
            .agent(label(scenario.second_label)?, scenario.start_b)?;
        let outcome = Simulation::new(self.algorithm.graph())
            .agent(Box::new(a), AgentSpec::immediate(scenario.start_a))
            .agent(
                Box::new(b),
                AgentSpec::delayed(scenario.start_b, scenario.delay),
            )
            .max_rounds(scenario.horizon)
            .meeting_condition(MeetingCondition::FirstPair)
            .run()?;
        Ok(ScenarioOutcome {
            scenario: *scenario,
            time: outcome.time(),
            cost: outcome.cost(),
            crossings: outcome.crossings(),
        })
    }
}

/// The two behaviors of one execution, built per scenario so that
/// position-aware behaviors can be constructed correctly.
pub type BehaviorPair<'a> = (Box<dyn AgentBehavior + 'a>, Box<dyn AgentBehavior + 'a>);

/// Executes scenarios with arbitrary behaviors from a factory — the
/// escape hatch for scripted agents, baselines, and tests.
pub struct FactoryExecutor<'a, F>
where
    F: Fn(&Scenario) -> BehaviorPair<'a> + Sync,
{
    graph: &'a rendezvous_graph::PortLabeledGraph,
    factory: F,
}

impl<'a, F> FactoryExecutor<'a, F>
where
    F: Fn(&Scenario) -> BehaviorPair<'a> + Sync,
{
    /// Wraps a behavior factory operating on `graph`.
    #[must_use]
    pub fn new(graph: &'a rendezvous_graph::PortLabeledGraph, factory: F) -> Self {
        FactoryExecutor { graph, factory }
    }
}

impl<'a, F> Executor for FactoryExecutor<'a, F>
where
    F: Fn(&Scenario) -> BehaviorPair<'a> + Sync,
{
    fn run(&self, scenario: &Scenario) -> Result<ScenarioOutcome, RunnerError> {
        let (a, b) = (self.factory)(scenario);
        let outcome = Simulation::new(self.graph)
            .agent(a, AgentSpec::immediate(scenario.start_a))
            .agent(b, AgentSpec::delayed(scenario.start_b, scenario.delay))
            .max_rounds(scenario.horizon)
            .run()?;
        Ok(ScenarioOutcome {
            scenario: *scenario,
            time: outcome.time(),
            cost: outcome.cost(),
            crossings: outcome.crossings(),
        })
    }
}
