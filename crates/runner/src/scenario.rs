//! One fully-specified adversarial configuration and its measured result.

use rendezvous_graph::NodeId;
use serde::{Deserialize, Serialize};

/// A complete two-agent rendezvous configuration: everything the adversary
/// chooses, plus the round budget the harness allows.
///
/// The first agent always wakes in round 1; the adversary's wake-up power
/// is expressed by [`Scenario::delay`] on the second agent *combined with*
/// enumerating both label role orders in the [`Grid`](crate::Grid) — that
/// pair of choices realizes "either agent may be delayed arbitrarily"
/// exactly, as in §1.2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Scenario {
    /// Label of the first (undelayed) agent.
    pub first_label: u64,
    /// Label of the second (possibly delayed) agent.
    pub second_label: u64,
    /// Start node of the first agent.
    pub start_a: NodeId,
    /// Start node of the second agent (distinct from `start_a`).
    pub start_b: NodeId,
    /// Rounds the adversary keeps the second agent asleep.
    pub delay: u64,
    /// Maximum number of rounds to simulate.
    pub horizon: u64,
}

/// The measured result of executing one [`Scenario`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// The configuration that produced this outcome.
    pub scenario: Scenario,
    /// Rounds from the earlier agent's start to the meeting (paper time);
    /// `None` if the agents did not meet within the horizon.
    pub time: Option<u64>,
    /// Total edge traversals until the meeting (or horizon).
    pub cost: u64,
    /// Edge crossings observed (never meetings, by the model).
    pub crossings: u64,
}

impl ScenarioOutcome {
    /// Returns `true` if the agents met within the horizon.
    #[must_use]
    pub fn met(&self) -> bool {
        self.time.is_some()
    }
}
