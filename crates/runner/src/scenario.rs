//! One fully-specified adversarial configuration and its measured result.

use rendezvous_graph::NodeId;
use serde::{Deserialize, Serialize};

/// One agent's slot in a [`Scenario`]: everything the adversary chooses
/// about a single fleet member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Placement {
    /// The agent's label.
    pub label: u64,
    /// The agent's start node (distinct from every other placement's).
    pub start: NodeId,
    /// Rounds the adversary keeps this agent asleep.
    pub delay: u64,
}

/// A complete `k ≥ 2`-agent configuration: everything the adversary
/// chooses, plus the round budget the harness allows.
///
/// The paper analyses two agents and names gathering of `k ≥ 2` agents as
/// the natural generalization (§1.4); a `Scenario` is the list of agent
/// [`Placement`]s (label, start node, wake-up delay). The two-agent case
/// is built by [`Scenario::pair`]: the first agent wakes in round 1 and
/// the adversary's wake-up power is expressed by the second placement's
/// delay *combined with* enumerating both label role orders in the
/// [`Grid`](crate::Grid) — that pair of choices realizes "either agent
/// may be delayed arbitrarily" exactly, as in §1.2 of the paper.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Scenario {
    /// The fleet, in placement order (`len() ≥ 2`).
    pub placements: Vec<Placement>,
    /// Maximum number of rounds to simulate.
    pub horizon: u64,
}

impl Scenario {
    /// The classic two-agent configuration: an undelayed first agent and
    /// a possibly delayed second one — a lossless adapter from the old
    /// pairwise call sites onto the fleet model.
    #[must_use]
    pub fn pair(
        first_label: u64,
        second_label: u64,
        start_a: NodeId,
        start_b: NodeId,
        delay: u64,
        horizon: u64,
    ) -> Scenario {
        Scenario {
            placements: vec![
                Placement {
                    label: first_label,
                    start: start_a,
                    delay: 0,
                },
                Placement {
                    label: second_label,
                    start: start_b,
                    delay,
                },
            ],
            horizon,
        }
    }

    /// A `k`-agent fleet configuration.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two placements are given — rendezvous and
    /// gathering are both defined for `k ≥ 2` only.
    #[must_use]
    pub fn fleet(placements: Vec<Placement>, horizon: u64) -> Scenario {
        assert!(
            placements.len() >= 2,
            "a scenario places at least two agents, got {}",
            placements.len()
        );
        Scenario {
            placements,
            horizon,
        }
    }

    /// Fleet size `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.placements.len()
    }

    /// Returns `true` for the classic two-agent configuration.
    #[must_use]
    pub fn is_pair(&self) -> bool {
        self.placements.len() == 2
    }

    /// The first (in the pair case: undelayed) agent's placement.
    #[must_use]
    pub fn first(&self) -> &Placement {
        &self.placements[0]
    }

    /// The second agent's placement.
    #[must_use]
    pub fn second(&self) -> &Placement {
        &self.placements[1]
    }

    /// Label of the first agent — pairwise ergonomics preserved.
    #[must_use]
    pub fn first_label(&self) -> u64 {
        self.first().label
    }

    /// Label of the second agent.
    #[must_use]
    pub fn second_label(&self) -> u64 {
        self.second().label
    }

    /// Start node of the first agent.
    #[must_use]
    pub fn start_a(&self) -> NodeId {
        self.first().start
    }

    /// Start node of the second agent.
    #[must_use]
    pub fn start_b(&self) -> NodeId {
        self.second().start
    }

    /// Wake-up delay of the second agent (the pair adversary's knob).
    #[must_use]
    pub fn delay(&self) -> u64 {
        self.second().delay
    }

    /// The largest wake-up delay anywhere in the fleet — the `d` of the
    /// merge-and-restart bound `(k−1)·(time bound + d)`.
    #[must_use]
    pub fn max_delay(&self) -> u64 {
        self.placements.iter().map(|p| p.delay).max().unwrap_or(0)
    }
}

/// The measured result of executing one [`Scenario`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioOutcome {
    /// The configuration that produced this outcome.
    pub scenario: Scenario,
    /// Rounds until the agents met (pair: paper time from the earlier
    /// agent's start; fleet: global round at which all `k` agents first
    /// shared a node); `None` if they did not within the horizon.
    pub time: Option<u64>,
    /// Total edge traversals until the meeting (or horizon).
    pub cost: u64,
    /// Edge crossings observed (never meetings, by the model). Pair
    /// executions only; gathering runs report 0.
    pub crossings: u64,
    /// The per-scenario analytic time bound this execution is checked
    /// against, when the executor computes one. Gathering's
    /// merge-and-restart bound `(k−1)·(time bound + max delay)` varies
    /// with the fleet size and delays, so it travels with the outcome;
    /// pair executors leave `None` and the sweep-level
    /// [`Bounds`](crate::Bounds) apply instead.
    pub time_bound: Option<u64>,
    /// Cluster-merge events observed (gathering runs; 0 for pair
    /// rendezvous, where the single meeting ends the run).
    pub merges: u64,
}

impl ScenarioOutcome {
    /// A pair-execution outcome: no per-scenario bound, no merge events.
    #[must_use]
    pub fn pairwise(scenario: Scenario, time: Option<u64>, cost: u64, crossings: u64) -> Self {
        ScenarioOutcome {
            scenario,
            time,
            cost,
            crossings,
            time_bound: None,
            merges: 0,
        }
    }

    /// Returns `true` if the agents met (gathered) within the horizon.
    #[must_use]
    pub fn met(&self) -> bool {
        self.time.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_constructor_is_a_lossless_adapter() {
        let s = Scenario::pair(3, 7, NodeId::new(1), NodeId::new(4), 5, 100);
        assert_eq!(s.k(), 2);
        assert!(s.is_pair());
        assert_eq!(s.first_label(), 3);
        assert_eq!(s.second_label(), 7);
        assert_eq!(s.start_a(), NodeId::new(1));
        assert_eq!(s.start_b(), NodeId::new(4));
        assert_eq!(s.delay(), 5);
        assert_eq!(s.max_delay(), 5);
        assert_eq!(s.first().delay, 0, "first agent always wakes in round 1");
        assert_eq!(s.horizon, 100);
    }

    #[test]
    fn fleet_constructor_accepts_arbitrary_k() {
        let placements: Vec<Placement> = (0..5)
            .map(|i| Placement {
                label: i + 1,
                start: NodeId::new(i as usize * 2),
                delay: (7 * i) % 13,
            })
            .collect();
        let s = Scenario::fleet(placements, 500);
        assert_eq!(s.k(), 5);
        assert!(!s.is_pair());
        // Delays are (7·i) mod 13 = [0, 7, 1, 8, 2]; the max is 8.
        assert_eq!(s.max_delay(), 8);
        assert_eq!(s.first().label, 1);
    }

    #[test]
    #[should_panic(expected = "at least two agents")]
    fn fleet_rejects_single_agents() {
        let _ = Scenario::fleet(
            vec![Placement {
                label: 1,
                start: NodeId::new(0),
                delay: 0,
            }],
            10,
        );
    }

    /// The ledger shape of a k-agent scenario: `placements` is an array
    /// of `{label, start, delay}` objects and the round trip is
    /// **byte-identical** — what the shard pipeline relies on.
    #[test]
    fn k_agent_scenario_serde_round_trips_byte_identically() {
        let s = Scenario::fleet(
            vec![
                Placement {
                    label: 1,
                    start: NodeId::new(0),
                    delay: 0,
                },
                Placement {
                    label: 9,
                    start: NodeId::new(4),
                    delay: 7,
                },
                Placement {
                    label: 17,
                    start: NodeId::new(8),
                    delay: 1,
                },
            ],
            4_000,
        );
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(
            json,
            r#"{"placements":[{"label":1,"start":0,"delay":0},{"label":9,"start":4,"delay":7},{"label":17,"start":8,"delay":1}],"horizon":4000}"#
        );
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
    }
}
