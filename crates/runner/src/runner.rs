//! The parallel batch executor.

use crate::{Executor, PieceExecutor, RunnerError, Scenario, SweepReport, Workload};
use rendezvous_telemetry::{Metrics, Scope, Stopwatch};
use std::num::NonZeroUsize;
use std::sync::Arc;

/// Executes workload sweeps (and generic per-item jobs) sequentially or
/// across OS threads.
///
/// Parallelism is a pure throughput knob: results are collected in input
/// order and folded sequentially at global workload indices, so a
/// parallel run produces **the same** [`SweepReport`] as a sequential
/// run of the same workload — asserted by the determinism property tests
/// in `tests/` and by the `--parallel`/`--sequential` toggle of the
/// `experiments` binary.
///
/// A [`Metrics`] sink may be attached ([`Runner::with_metrics`]); it
/// observes the sweep (scenarios executed, pieces completed, per-piece
/// wall time, live progress) without ever entering the fold — a sweep
/// with a sink produces byte-identical reports to one without.
#[derive(Debug, Clone)]
pub struct Runner {
    threads: usize,
    metrics: Option<Arc<Metrics>>,
}

impl Runner {
    /// A runner using `threads` worker threads (1 = sequential).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Runner {
            threads: threads.max(1),
            metrics: None,
        }
    }

    /// Attaches a telemetry sink observing this runner's sweeps.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Arc<Metrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The attached telemetry sink, if any.
    #[must_use]
    pub fn metrics(&self) -> Option<&Arc<Metrics>> {
        self.metrics.as_ref()
    }

    /// A strictly sequential runner.
    #[must_use]
    pub fn sequential() -> Self {
        Runner::with_threads(1)
    }

    /// A runner using all available hardware parallelism.
    #[must_use]
    pub fn parallel() -> Self {
        Runner::with_threads(
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(4),
        )
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Returns `true` if this runner actually runs work concurrently.
    #[must_use]
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Order-preserving map over `items`: applies `job` to every item
    /// (receiving the item's index) and returns the results in input
    /// order, regardless of which thread computed what.
    pub fn map<T, R, F>(&self, items: Vec<T>, job: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        if self.threads == 1 || items.len() <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| job(i, item))
                .collect();
        }
        let len = items.len();
        let chunk_len = len.div_ceil(self.threads);
        // Contiguous chunks keep (chunk id, offset) → global index trivial
        // and let each worker write into its own slice of the output.
        let mut chunks: Vec<Vec<T>> = Vec::new();
        let mut iter = items.into_iter();
        loop {
            let chunk: Vec<T> = iter.by_ref().take(chunk_len).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
        let mut results: Vec<Option<R>> = Vec::with_capacity(len);
        results.resize_with(len, || None);
        let job = &job;
        std::thread::scope(|scope| {
            let mut remaining: &mut [Option<R>] = &mut results;
            for (chunk_id, chunk) in chunks.into_iter().enumerate() {
                let (slot, rest) = remaining.split_at_mut(chunk.len());
                remaining = rest;
                let base = chunk_id * chunk_len;
                scope.spawn(move || {
                    for (offset, item) in chunk.into_iter().enumerate() {
                        slot[offset] = Some(job(base + offset, item));
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every slot written by exactly one worker"))
            .collect()
    }

    /// Executes every scenario through `executor` and returns the raw
    /// outcomes in input order — the building block piece executors use
    /// for their batches.
    ///
    /// # Errors
    ///
    /// The first [`RunnerError`] by scenario index, if any execution
    /// failed — deterministic even under parallelism.
    pub fn outcomes(
        &self,
        executor: &dyn Executor,
        scenarios: &[Scenario],
    ) -> Result<Vec<crate::ScenarioOutcome>, RunnerError> {
        self.map((0..scenarios.len()).collect(), |_, i| {
            executor.run(&scenarios[i]).map_err(|e| e.at_index(i))
        })
        .into_iter()
        .collect()
    }

    /// Sweeps an entire [`Workload`] into a [`SweepReport`] — the one
    /// enumerate → run → fold pipeline behind every experiment.
    ///
    /// # Errors
    ///
    /// The first [`RunnerError`] in global unit order.
    pub fn sweep<W, E>(&self, workload: &W, executor: &E) -> Result<SweepReport, RunnerError>
    where
        W: Workload + ?Sized,
        E: PieceExecutor + ?Sized,
    {
        self.sweep_range(workload, 0, workload.size(), executor)
    }

    /// Sweeps shard `shard` of `of` of a [`Workload`] (see
    /// [`Workload::shard`]), folding outcomes at their **global** unit
    /// indices — so merging the per-shard reports with
    /// [`SweepReport::merge`] reproduces [`Runner::sweep`] exactly,
    /// witnesses and tie-breaks included.
    ///
    /// # Errors
    ///
    /// See [`Runner::sweep`].
    pub fn sweep_shard<W, E>(
        &self,
        workload: &W,
        shard: usize,
        of: usize,
        executor: &E,
    ) -> Result<SweepReport, RunnerError>
    where
        W: Workload + ?Sized,
        E: PieceExecutor + ?Sized,
    {
        let (lo, hi) = workload.shard(shard, of);
        self.sweep_range(workload, lo, hi, executor)
    }

    /// Sweeps the global index range `[lo, hi)` of a [`Workload`].
    ///
    /// Parallelism adapts to the workload's shape: a multi-piece range
    /// (a topology sweep touching many specs) parallelizes **across
    /// pieces**, each piece running its batch sequentially — nesting two
    /// parallel levels would only oversubscribe cores — while a
    /// single-piece range (a plain grid) hands this runner to the piece
    /// executor, which parallelizes across scenarios. Either way the
    /// fold walks outcomes in global order, so parallel and sequential
    /// runs produce identical reports and identical first-error
    /// behavior.
    ///
    /// # Errors
    ///
    /// See [`Runner::sweep`].
    pub fn sweep_range<W, E>(
        &self,
        workload: &W,
        lo: usize,
        hi: usize,
        executor: &E,
    ) -> Result<SweepReport, RunnerError>
    where
        W: Workload + ?Sized,
        E: PieceExecutor + ?Sized,
    {
        let pieces = workload.pieces(lo, hi);
        let telemetry = self.metrics.as_deref();
        if let Some(metrics) = telemetry {
            metrics.progress().add_planned(hi - lo, pieces.len());
        }
        let inner = if self.is_parallel() && pieces.len() > 1 {
            Runner::sequential()
        } else {
            self.clone()
        };
        let results = self.map(pieces, |_, piece| {
            let watch = telemetry.map(|_| Stopwatch::start());
            let result = executor.run_piece(&inner, &piece);
            if let Some(metrics) = telemetry {
                if let Some(watch) = &watch {
                    metrics
                        .histogram("piece_wall_ns")
                        .record_ns(watch.elapsed_ns());
                }
                if result.is_ok() {
                    metrics
                        .counter(Scope::Scenario, "scenarios_executed")
                        .add_count(piece.scenarios.len());
                    metrics.counter(Scope::Process, "pieces_completed").inc();
                }
                metrics.progress().piece_done(piece.scenarios.len());
            }
            result
                .map_err(|e| e.in_piece(piece.offset, piece.key))
                .map(|(outcomes, bounds)| (piece, outcomes, bounds))
        });
        let mut report = SweepReport::default();
        for result in results {
            let (piece, outcomes, bounds) = result?;
            debug_assert_eq!(outcomes.len(), piece.scenarios.len());
            let spec = piece.entry.map(|e| &e.spec);
            for (k, outcome) in outcomes.iter().enumerate() {
                report.absorb(piece.key, piece.offset + k, spec, outcome, bounds);
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_under_parallelism() {
        let items: Vec<usize> = (0..997).collect();
        let sequential = Runner::sequential().map(items.clone(), |i, x| i * 31 + x);
        let parallel = Runner::with_threads(8).map(items, |i, x| i * 31 + x);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn map_handles_small_and_empty_batches() {
        let empty: Vec<u64> = Vec::new();
        assert!(Runner::with_threads(8).map(empty, |_, x| x).is_empty());
        assert_eq!(
            Runner::with_threads(8).map(vec![7], |i, x| (i, x)),
            vec![(0, 7)]
        );
    }

    #[test]
    fn thread_counts_are_clamped() {
        assert_eq!(Runner::with_threads(0).threads(), 1);
        assert!(!Runner::sequential().is_parallel());
        assert!(Runner::parallel().threads() >= 1);
    }
}
