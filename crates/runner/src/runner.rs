//! The parallel batch executor.

use crate::{Bounds, Executor, RunnerError, Scenario, ScenarioShard, SweepStats};
use std::num::NonZeroUsize;

/// Executes scenario batches (and generic per-item jobs) sequentially or
/// across OS threads.
///
/// Parallelism is a pure throughput knob: results are collected in input
/// order and folded sequentially, so a parallel run produces **the same**
/// [`SweepStats`] as a sequential run of the same batch — asserted by the
/// determinism property test in `tests/` and by the
/// `--parallel`/`--sequential` toggle of the `experiments` binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Runner {
    threads: usize,
}

impl Runner {
    /// A runner using `threads` worker threads (1 = sequential).
    #[must_use]
    pub fn with_threads(threads: usize) -> Self {
        Runner {
            threads: threads.max(1),
        }
    }

    /// A strictly sequential runner.
    #[must_use]
    pub fn sequential() -> Self {
        Runner::with_threads(1)
    }

    /// A runner using all available hardware parallelism.
    #[must_use]
    pub fn parallel() -> Self {
        Runner::with_threads(
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(4),
        )
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Returns `true` if this runner actually runs work concurrently.
    #[must_use]
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Order-preserving map over `items`: applies `job` to every item
    /// (receiving the item's index) and returns the results in input
    /// order, regardless of which thread computed what.
    pub fn map<T, R, F>(&self, items: Vec<T>, job: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        if self.threads == 1 || items.len() <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| job(i, item))
                .collect();
        }
        let len = items.len();
        let chunk_len = len.div_ceil(self.threads);
        // Contiguous chunks keep (chunk id, offset) → global index trivial
        // and let each worker write into its own slice of the output.
        let mut chunks: Vec<Vec<T>> = Vec::new();
        let mut iter = items.into_iter();
        loop {
            let chunk: Vec<T> = iter.by_ref().take(chunk_len).collect();
            if chunk.is_empty() {
                break;
            }
            chunks.push(chunk);
        }
        let mut results: Vec<Option<R>> = Vec::with_capacity(len);
        results.resize_with(len, || None);
        let job = &job;
        std::thread::scope(|scope| {
            let mut remaining: &mut [Option<R>] = &mut results;
            for (chunk_id, chunk) in chunks.into_iter().enumerate() {
                let (slot, rest) = remaining.split_at_mut(chunk.len());
                remaining = rest;
                let base = chunk_id * chunk_len;
                scope.spawn(move || {
                    for (offset, item) in chunk.into_iter().enumerate() {
                        slot[offset] = Some(job(base + offset, item));
                    }
                });
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every slot written by exactly one worker"))
            .collect()
    }

    /// Executes every scenario through `executor` and returns the raw
    /// outcomes in input order — the building block for folds other than
    /// [`SweepStats`] (e.g. the topology sweep's per-family fold).
    ///
    /// # Errors
    ///
    /// The first [`RunnerError`] by scenario index, if any execution
    /// failed — deterministic even under parallelism.
    pub fn outcomes(
        &self,
        executor: &dyn Executor,
        scenarios: &[Scenario],
    ) -> Result<Vec<crate::ScenarioOutcome>, RunnerError> {
        self.map((0..scenarios.len()).collect(), |_, i| {
            executor.run(&scenarios[i])
        })
        .into_iter()
        .collect()
    }

    /// Executes every scenario through `executor` and folds the outcomes
    /// (in scenario order) into [`SweepStats`] checked against `bounds`.
    ///
    /// # Errors
    ///
    /// The first [`RunnerError`] by scenario index, if any execution
    /// failed — deterministic even under parallelism.
    pub fn sweep_bounded(
        &self,
        executor: &dyn Executor,
        scenarios: &[Scenario],
        bounds: Option<Bounds>,
    ) -> Result<SweepStats, RunnerError> {
        self.sweep_bounded_at(executor, scenarios, 0, bounds)
    }

    /// [`Runner::sweep_bounded`] for a slice that starts at global
    /// scenario index `base`: outcomes fold at `base + position`, so the
    /// resulting stats (witness indices included) are exactly the
    /// contribution this slice makes to the full sweep. This is what makes
    /// shard sweeps mergeable — see [`Runner::sweep_shard`].
    ///
    /// # Errors
    ///
    /// See [`Runner::sweep_bounded`].
    pub fn sweep_bounded_at(
        &self,
        executor: &dyn Executor,
        scenarios: &[Scenario],
        base: usize,
        bounds: Option<Bounds>,
    ) -> Result<SweepStats, RunnerError> {
        // Map over indices into the borrowed slice: scenarios are Copy but
        // large grids would still pay an avoidable clone of the whole batch.
        let outcomes = self.map((0..scenarios.len()).collect(), |_, i| {
            executor.run(&scenarios[i])
        });
        let mut stats = SweepStats::default();
        for (index, outcome) in outcomes.into_iter().enumerate() {
            stats.absorb(base + index, &outcome?, bounds);
        }
        Ok(stats)
    }

    /// Sweeps one shard of a grid (see [`Grid::shard`](crate::Grid::shard)),
    /// folding outcomes at their global scenario indices. Merging the
    /// resulting per-shard stats with
    /// [`SweepStats::merge`](crate::SweepStats::merge) reproduces the
    /// unsharded sweep field for field.
    ///
    /// # Errors
    ///
    /// See [`Runner::sweep_bounded`].
    pub fn sweep_shard(
        &self,
        executor: &dyn Executor,
        shard: &ScenarioShard,
        bounds: Option<Bounds>,
    ) -> Result<SweepStats, RunnerError> {
        self.sweep_bounded_at(executor, &shard.scenarios, shard.offset, bounds)
    }

    /// [`Runner::sweep_bounded`] without bound checking.
    ///
    /// # Errors
    ///
    /// See [`Runner::sweep_bounded`].
    pub fn sweep(
        &self,
        executor: &dyn Executor,
        scenarios: &[Scenario],
    ) -> Result<SweepStats, RunnerError> {
        self.sweep_bounded(executor, scenarios, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order_under_parallelism() {
        let items: Vec<usize> = (0..997).collect();
        let sequential = Runner::sequential().map(items.clone(), |i, x| i * 31 + x);
        let parallel = Runner::with_threads(8).map(items, |i, x| i * 31 + x);
        assert_eq!(sequential, parallel);
    }

    #[test]
    fn map_handles_small_and_empty_batches() {
        let empty: Vec<u64> = Vec::new();
        assert!(Runner::with_threads(8).map(empty, |_, x| x).is_empty());
        assert_eq!(
            Runner::with_threads(8).map(vec![7], |i, x| (i, x)),
            vec![(0, 7)]
        );
    }

    #[test]
    fn thread_counts_are_clamped() {
        assert_eq!(Runner::with_threads(0).threads(), 1);
        assert!(!Runner::sequential().is_parallel());
        assert!(Runner::parallel().threads() >= 1);
    }
}
