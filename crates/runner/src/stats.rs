//! Order-independent aggregation of scenario outcomes.

use crate::{Scenario, ScenarioOutcome};

/// The paper bounds a sweep is checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bounds {
    /// Worst-case time bound (rounds from the earlier agent's start).
    pub time: u64,
    /// Worst-case cost bound (total edge traversals).
    pub cost: u64,
}

/// A worst-case witness: which scenario achieved an extreme value.
///
/// Ties are broken by the smallest scenario index, which makes the witness
/// independent of execution order (and hence of parallelism).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorstEntry {
    /// Index of the scenario in the swept batch.
    pub index: usize,
    /// The scenario itself.
    pub scenario: Scenario,
    /// Its measured time. Witnesses are only recorded for meeting
    /// scenarios; non-meeting executions count into
    /// [`SweepStats::failures`] instead.
    pub time: u64,
    /// Its measured cost.
    pub cost: u64,
}

/// Aggregate statistics of one sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepStats {
    /// Scenarios executed.
    pub executed: usize,
    /// Scenarios in which the agents met within the horizon.
    pub meetings: usize,
    /// Scenarios in which they did not — for the paper's algorithms under
    /// a sufficient horizon this must be 0, and callers assert so.
    pub failures: usize,
    /// Maximum time over meeting scenarios.
    pub max_time: u64,
    /// Maximum cost over meeting scenarios.
    pub max_cost: u64,
    /// Sum of times over meeting scenarios (for means).
    pub total_time: u128,
    /// Sum of costs over meeting scenarios.
    pub total_cost: u128,
    /// Total edge crossings observed across all scenarios.
    pub crossings: u64,
    /// Meeting scenarios whose time exceeded [`Bounds::time`].
    pub time_violations: usize,
    /// Meeting scenarios whose cost exceeded [`Bounds::cost`].
    pub cost_violations: usize,
    /// Witness of `max_time` (lowest index on ties).
    pub worst_time: Option<WorstEntry>,
    /// Witness of `max_cost` (lowest index on ties).
    pub worst_cost: Option<WorstEntry>,
}

impl SweepStats {
    /// Mean time over meeting scenarios.
    #[must_use]
    pub fn mean_time(&self) -> f64 {
        if self.meetings == 0 {
            0.0
        } else {
            self.total_time as f64 / self.meetings as f64
        }
    }

    /// Mean cost over meeting scenarios.
    #[must_use]
    pub fn mean_cost(&self) -> f64 {
        if self.meetings == 0 {
            0.0
        } else {
            self.total_cost as f64 / self.meetings as f64
        }
    }

    /// Returns `true` if every meeting respected the bounds and every
    /// scenario met.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.failures == 0 && self.time_violations == 0 && self.cost_violations == 0
    }

    /// Folds one indexed outcome into the aggregate. Folding is pure and
    /// index-deterministic: folding the same outcomes in index order
    /// always yields the same stats, regardless of how they were computed.
    pub fn absorb(&mut self, index: usize, outcome: &ScenarioOutcome, bounds: Option<Bounds>) {
        self.executed += 1;
        self.crossings += outcome.crossings;
        match outcome.time {
            Some(time) => {
                self.meetings += 1;
                self.total_time += u128::from(time);
                self.total_cost += u128::from(outcome.cost);
                let entry = WorstEntry {
                    index,
                    scenario: outcome.scenario,
                    time,
                    cost: outcome.cost,
                };
                // Explicit lowest-index tie-break (not first-absorbed-wins)
                // so the documented witness contract survives folds that
                // absorb outcomes out of index order, e.g. shard merges.
                self.max_time = self.max_time.max(time);
                if self
                    .worst_time
                    .is_none_or(|w| time > w.time || (time == w.time && index < w.index))
                {
                    self.worst_time = Some(entry);
                }
                self.max_cost = self.max_cost.max(outcome.cost);
                if self.worst_cost.is_none_or(|w| {
                    outcome.cost > w.cost || (outcome.cost == w.cost && index < w.index)
                }) {
                    self.worst_cost = Some(entry);
                }
                if let Some(b) = bounds {
                    if time > b.time {
                        self.time_violations += 1;
                    }
                    if outcome.cost > b.cost {
                        self.cost_violations += 1;
                    }
                }
            }
            None => self.failures += 1,
        }
    }
}

/// Sequentially folds outcomes (in slice order) into [`SweepStats`] — the
/// reference fold that parallel sweeps must agree with.
#[must_use]
pub fn fold_outcomes(outcomes: &[ScenarioOutcome], bounds: Option<Bounds>) -> SweepStats {
    let mut stats = SweepStats::default();
    for (index, outcome) in outcomes.iter().enumerate() {
        stats.absorb(index, outcome, bounds);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use rendezvous_graph::NodeId;

    fn outcome(time: Option<u64>, cost: u64, crossings: u64) -> ScenarioOutcome {
        ScenarioOutcome {
            scenario: Scenario {
                first_label: 1,
                second_label: 2,
                start_a: NodeId::new(0),
                start_b: NodeId::new(1),
                delay: 0,
                horizon: 10,
            },
            time,
            cost,
            crossings,
        }
    }

    #[test]
    fn fold_tracks_extremes_means_and_failures() {
        let outcomes = vec![
            outcome(Some(4), 2, 0),
            outcome(None, 9, 1),
            outcome(Some(10), 1, 0),
            outcome(Some(10), 8, 2),
        ];
        let bounds = Some(Bounds { time: 9, cost: 100 });
        let stats = fold_outcomes(&outcomes, bounds);
        assert_eq!(stats.executed, 4);
        assert_eq!(stats.meetings, 3);
        assert_eq!(stats.failures, 1);
        assert_eq!(stats.max_time, 10);
        assert_eq!(stats.max_cost, 8);
        assert_eq!(stats.crossings, 3);
        // First scenario reaching the max wins ties.
        assert_eq!(stats.worst_time.unwrap().index, 2);
        assert_eq!(stats.worst_cost.unwrap().index, 3);
        // Two meetings exceeded the time bound of 9? Only times 10, 10.
        assert_eq!(stats.time_violations, 2);
        assert_eq!(stats.cost_violations, 0);
        assert!(!stats.clean());
        assert!((stats.mean_time() - 8.0).abs() < 1e-9);
        assert!((stats.mean_cost() - (11.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn tie_break_picks_lowest_index_even_when_absorbed_out_of_order() {
        // Simulates a shard merge: the higher-index shard folds first.
        // The witness contract (lowest index on ties) must still hold.
        let a = outcome(Some(10), 5, 0);
        let b = outcome(Some(10), 5, 0);
        let mut stats = SweepStats::default();
        stats.absorb(7, &b, None);
        stats.absorb(2, &a, None);
        assert_eq!(stats.worst_time.unwrap().index, 2);
        assert_eq!(stats.worst_cost.unwrap().index, 2);
        // In-order folding agrees.
        let ordered = fold_outcomes(&[a, b], None);
        assert_eq!(ordered.worst_time.unwrap().index, 0);
        assert_eq!(stats.max_time, ordered.max_time);
    }

    #[test]
    fn empty_fold_is_clean_zero() {
        let stats = fold_outcomes(&[], None);
        assert_eq!(stats.executed, 0);
        assert!(stats.clean());
        assert_eq!(stats.mean_time(), 0.0);
        assert!(stats.worst_time.is_none());
    }
}
