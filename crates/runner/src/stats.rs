//! Order-independent aggregation of scenario outcomes.

use crate::{Scenario, ScenarioOutcome};
use serde::{Deserialize, Serialize};

/// The paper bounds a sweep is checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bounds {
    /// Worst-case time bound (rounds from the earlier agent's start).
    pub time: u64,
    /// Worst-case cost bound (total edge traversals).
    pub cost: u64,
}

/// A worst-case witness: which scenario achieved an extreme value.
///
/// Ties are broken by the smallest scenario index, which makes the witness
/// independent of execution order (and hence of parallelism).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorstEntry {
    /// Index of the scenario in the swept batch.
    pub index: usize,
    /// The scenario itself.
    pub scenario: Scenario,
    /// Its measured time. Witnesses are only recorded for meeting
    /// scenarios; non-meeting executions count into
    /// [`SweepStats::failures`] instead.
    pub time: u64,
    /// Its measured cost.
    pub cost: u64,
}

/// Aggregate statistics of one sweep.
///
/// Stats are **mergeable**: a sweep can be split into shards (see
/// [`Grid::shard`](crate::Grid::shard)), executed in separate processes,
/// serialized across the process boundary, and folded back together with
/// [`SweepStats::merge`] — producing exactly the stats of the unsharded
/// sweep, witnesses included.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SweepStats {
    /// Scenarios executed.
    pub executed: usize,
    /// Scenarios in which the agents met within the horizon.
    pub meetings: usize,
    /// Scenarios in which they did not — for the paper's algorithms under
    /// a sufficient horizon this must be 0, and callers assert so.
    pub failures: usize,
    /// Maximum time over meeting scenarios.
    pub max_time: u64,
    /// Maximum cost over meeting scenarios.
    pub max_cost: u64,
    /// Sum of times over meeting scenarios (for means).
    pub total_time: u128,
    /// Sum of costs over meeting scenarios.
    pub total_cost: u128,
    /// Total edge crossings observed across all scenarios.
    pub crossings: u64,
    /// Meeting scenarios whose time exceeded [`Bounds::time`].
    pub time_violations: usize,
    /// Meeting scenarios whose cost exceeded [`Bounds::cost`].
    pub cost_violations: usize,
    /// Witness of `max_time` (lowest index on ties).
    pub worst_time: Option<WorstEntry>,
    /// Witness of `max_cost` (lowest index on ties).
    pub worst_cost: Option<WorstEntry>,
}

impl SweepStats {
    /// Mean time over meeting scenarios.
    #[must_use]
    pub fn mean_time(&self) -> f64 {
        if self.meetings == 0 {
            0.0
        } else {
            self.total_time as f64 / self.meetings as f64
        }
    }

    /// Mean cost over meeting scenarios.
    #[must_use]
    pub fn mean_cost(&self) -> f64 {
        if self.meetings == 0 {
            0.0
        } else {
            self.total_cost as f64 / self.meetings as f64
        }
    }

    /// Returns `true` if every meeting respected the bounds and every
    /// scenario met.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.failures == 0 && self.time_violations == 0 && self.cost_violations == 0
    }

    /// Folds one indexed outcome into the aggregate. Folding is pure and
    /// index-deterministic: folding the same outcomes in index order
    /// always yields the same stats, regardless of how they were computed.
    pub fn absorb(&mut self, index: usize, outcome: &ScenarioOutcome, bounds: Option<Bounds>) {
        self.executed += 1;
        self.crossings += outcome.crossings;
        match outcome.time {
            Some(time) => {
                self.meetings += 1;
                self.total_time += u128::from(time);
                self.total_cost += u128::from(outcome.cost);
                let entry = WorstEntry {
                    index,
                    scenario: outcome.scenario,
                    time,
                    cost: outcome.cost,
                };
                // Explicit lowest-index tie-break (not first-absorbed-wins)
                // so the documented witness contract survives folds that
                // absorb outcomes out of index order, e.g. shard merges.
                self.max_time = self.max_time.max(time);
                if self
                    .worst_time
                    .is_none_or(|w| time > w.time || (time == w.time && index < w.index))
                {
                    self.worst_time = Some(entry);
                }
                self.max_cost = self.max_cost.max(outcome.cost);
                if self.worst_cost.is_none_or(|w| {
                    outcome.cost > w.cost || (outcome.cost == w.cost && index < w.index)
                }) {
                    self.worst_cost = Some(entry);
                }
                if let Some(b) = bounds {
                    if time > b.time {
                        self.time_violations += 1;
                    }
                    if outcome.cost > b.cost {
                        self.cost_violations += 1;
                    }
                }
            }
            None => self.failures += 1,
        }
    }

    /// Combines the stats of two disjoint shards of one sweep into the
    /// stats of their union — the associative, commutative fold that makes
    /// multi-process sweeps possible.
    ///
    /// Every field of [`SweepStats`] is an associative fold of per-scenario
    /// contributions (sums and maxima) except the worst-case witnesses,
    /// which carry the lowest-index tie-break: when both shards reach the
    /// same extreme value, the witness with the smaller **global** scenario
    /// index wins, exactly as if the whole sweep had been folded in index
    /// order by [`SweepStats::absorb`].
    #[must_use]
    pub fn merge(&self, other: &SweepStats) -> SweepStats {
        /// Lowest-index-on-ties winner between two optional witnesses,
        /// ranked by the given extreme value.
        fn worst(
            a: Option<WorstEntry>,
            b: Option<WorstEntry>,
            value: impl Fn(&WorstEntry) -> u64,
        ) -> Option<WorstEntry> {
            match (a, b) {
                (Some(x), Some(y)) => {
                    let (vx, vy) = (value(&x), value(&y));
                    if vx > vy || (vx == vy && x.index <= y.index) {
                        Some(x)
                    } else {
                        Some(y)
                    }
                }
                (x, y) => x.or(y),
            }
        }
        SweepStats {
            executed: self.executed + other.executed,
            meetings: self.meetings + other.meetings,
            failures: self.failures + other.failures,
            max_time: self.max_time.max(other.max_time),
            max_cost: self.max_cost.max(other.max_cost),
            total_time: self.total_time + other.total_time,
            total_cost: self.total_cost + other.total_cost,
            crossings: self.crossings + other.crossings,
            time_violations: self.time_violations + other.time_violations,
            cost_violations: self.cost_violations + other.cost_violations,
            worst_time: worst(self.worst_time, other.worst_time, |w| w.time),
            worst_cost: worst(self.worst_cost, other.worst_cost, |w| w.cost),
        }
    }
}

/// Sequentially folds outcomes (in slice order) into [`SweepStats`] — the
/// reference fold that parallel sweeps must agree with.
#[must_use]
pub fn fold_outcomes(outcomes: &[ScenarioOutcome], bounds: Option<Bounds>) -> SweepStats {
    let mut stats = SweepStats::default();
    for (index, outcome) in outcomes.iter().enumerate() {
        stats.absorb(index, outcome, bounds);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use rendezvous_graph::NodeId;

    fn outcome(time: Option<u64>, cost: u64, crossings: u64) -> ScenarioOutcome {
        ScenarioOutcome {
            scenario: Scenario {
                first_label: 1,
                second_label: 2,
                start_a: NodeId::new(0),
                start_b: NodeId::new(1),
                delay: 0,
                horizon: 10,
            },
            time,
            cost,
            crossings,
        }
    }

    #[test]
    fn fold_tracks_extremes_means_and_failures() {
        let outcomes = vec![
            outcome(Some(4), 2, 0),
            outcome(None, 9, 1),
            outcome(Some(10), 1, 0),
            outcome(Some(10), 8, 2),
        ];
        let bounds = Some(Bounds { time: 9, cost: 100 });
        let stats = fold_outcomes(&outcomes, bounds);
        assert_eq!(stats.executed, 4);
        assert_eq!(stats.meetings, 3);
        assert_eq!(stats.failures, 1);
        assert_eq!(stats.max_time, 10);
        assert_eq!(stats.max_cost, 8);
        assert_eq!(stats.crossings, 3);
        // First scenario reaching the max wins ties.
        assert_eq!(stats.worst_time.unwrap().index, 2);
        assert_eq!(stats.worst_cost.unwrap().index, 3);
        // Two meetings exceeded the time bound of 9? Only times 10, 10.
        assert_eq!(stats.time_violations, 2);
        assert_eq!(stats.cost_violations, 0);
        assert!(!stats.clean());
        assert!((stats.mean_time() - 8.0).abs() < 1e-9);
        assert!((stats.mean_cost() - (11.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn tie_break_picks_lowest_index_even_when_absorbed_out_of_order() {
        // Simulates a shard merge: the higher-index shard folds first.
        // The witness contract (lowest index on ties) must still hold.
        let a = outcome(Some(10), 5, 0);
        let b = outcome(Some(10), 5, 0);
        let mut stats = SweepStats::default();
        stats.absorb(7, &b, None);
        stats.absorb(2, &a, None);
        assert_eq!(stats.worst_time.unwrap().index, 2);
        assert_eq!(stats.worst_cost.unwrap().index, 2);
        // In-order folding agrees.
        let ordered = fold_outcomes(&[a, b], None);
        assert_eq!(ordered.worst_time.unwrap().index, 0);
        assert_eq!(stats.max_time, ordered.max_time);
    }

    #[test]
    fn merge_equals_one_pass_fold_and_is_associative() {
        let outcomes = vec![
            outcome(Some(4), 2, 0),
            outcome(None, 9, 1),
            outcome(Some(10), 1, 0),
            outcome(Some(10), 8, 2),
            outcome(Some(3), 8, 0),
        ];
        let bounds = Some(Bounds { time: 9, cost: 7 });
        let whole = fold_outcomes(&outcomes, bounds);
        // Split at every point: left ++ right must merge back to `whole`.
        for split in 0..=outcomes.len() {
            let mut left = SweepStats::default();
            let mut right = SweepStats::default();
            for (i, o) in outcomes.iter().enumerate() {
                if i < split {
                    left.absorb(i, o, bounds);
                } else {
                    right.absorb(i, o, bounds);
                }
            }
            assert_eq!(left.merge(&right), whole, "split at {split}");
            // Commutes, because indices carry the order.
            assert_eq!(right.merge(&left), whole, "swapped split at {split}");
        }
        // Associativity over a three-way split.
        let mut parts = [SweepStats::default(); 3];
        for (i, o) in outcomes.iter().enumerate() {
            parts[i % 3].absorb(i, o, bounds);
        }
        let ab_c = parts[0].merge(&parts[1]).merge(&parts[2]);
        let a_bc = parts[0].merge(&parts[1].merge(&parts[2]));
        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c, whole);
    }

    #[test]
    fn merge_tie_breaks_witnesses_by_lowest_global_index() {
        let w = outcome(Some(10), 5, 0);
        let mut low = SweepStats::default();
        low.absorb(3, &w, None);
        let mut high = SweepStats::default();
        high.absorb(11, &w, None);
        // Either merge order: the index-3 witness must win both extremes.
        assert_eq!(low.merge(&high).worst_time.unwrap().index, 3);
        assert_eq!(high.merge(&low).worst_time.unwrap().index, 3);
        assert_eq!(high.merge(&low).worst_cost.unwrap().index, 3);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut stats = SweepStats::default();
        stats.absorb(0, &outcome(Some(7), 4, 1), None);
        let empty = SweepStats::default();
        assert_eq!(stats.merge(&empty), stats);
        assert_eq!(empty.merge(&stats), stats);
    }

    #[test]
    fn sweep_stats_serde_round_trip() {
        let bounds = Some(Bounds { time: 9, cost: 7 });
        let mut stats = fold_outcomes(
            &[
                outcome(Some(4), 2, 0),
                outcome(None, 9, 1),
                outcome(Some(10), 8, 2),
            ],
            bounds,
        );
        // Exercise the u128 string fallback path too.
        stats.total_time += u128::from(u64::MAX) * 3;
        let text = serde_json::to_string(&stats).unwrap();
        let back: SweepStats = serde_json::from_str(&text).unwrap();
        assert_eq!(back, stats);
        // Witnesses survive with their full scenario payload.
        assert_eq!(
            back.worst_time.unwrap().scenario,
            stats.worst_time.unwrap().scenario
        );
        // And an all-default (witness-free) value round-trips as well.
        let empty = SweepStats::default();
        let back: SweepStats =
            serde_json::from_str(&serde_json::to_string(&empty).unwrap()).unwrap();
        assert_eq!(back, empty);
    }

    #[test]
    fn empty_fold_is_clean_zero() {
        let stats = fold_outcomes(&[], None);
        assert_eq!(stats.executed, 0);
        assert!(stats.clean());
        assert_eq!(stats.mean_time(), 0.0);
        assert!(stats.worst_time.is_none());
    }
}
