//! Order-independent aggregation of scenario outcomes.

use crate::{Scenario, ScenarioOutcome};
use serde::{Deserialize, Serialize};

/// The paper bounds a sweep is checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bounds {
    /// Worst-case time bound (rounds from the earlier agent's start).
    pub time: u64,
    /// Worst-case cost bound (total edge traversals).
    pub cost: u64,
}

/// A worst-case witness: which scenario achieved an extreme value.
///
/// Ties are broken by the smallest scenario index, which makes the witness
/// independent of execution order (and hence of parallelism).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorstEntry {
    /// Index of the scenario in the swept batch.
    pub index: usize,
    /// The scenario itself.
    pub scenario: Scenario,
    /// Its measured time. Witnesses are only recorded for meeting
    /// scenarios; non-meeting executions count into
    /// [`SweepStats::failures`] instead.
    pub time: u64,
    /// Its measured cost.
    pub cost: u64,
}

/// The witness of the worst `time / bound` ratio over scenarios that
/// carry a **per-scenario** analytic bound
/// ([`ScenarioOutcome::time_bound`]) — gathering's merge-and-restart
/// bound `(k−1)·(time bound + max delay)` varies with the fleet, so a
/// single sweep-level [`Bounds`] cannot rank those outcomes.
///
/// Ratios are compared by exact `u128` cross-multiplication, never
/// floats, and ties break toward the smallest scenario index — so the
/// witness is independent of execution order and of sharding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RatioEntry {
    /// Index of the scenario in the swept batch.
    pub index: usize,
    /// The scenario itself.
    pub scenario: Scenario,
    /// Its measured time (the ratio's numerator).
    pub time: u64,
    /// Its per-scenario analytic bound (the ratio's denominator).
    pub time_bound: u64,
}

/// `a.0/a.1 > b.0/b.1` by `u128` cross-multiplication — exact, so merge
/// order can never flip a comparison the way float rounding could. The
/// single definition behind both the sweep-level [`RatioEntry`] and the
/// topology sweep's [`TopoWitness`](crate::TopoWitness) ranking.
pub(crate) fn ratio_pair_gt(a: (u64, u64), b: (u64, u64)) -> bool {
    u128::from(a.0) * u128::from(b.1) > u128::from(b.0) * u128::from(a.1)
}

/// `a.0/a.1 == b.0/b.1`, exactly.
pub(crate) fn ratio_pair_eq(a: (u64, u64), b: (u64, u64)) -> bool {
    u128::from(a.0) * u128::from(b.1) == u128::from(b.0) * u128::from(a.1)
}

fn ratio_gt(a: &RatioEntry, b: &RatioEntry) -> bool {
    ratio_pair_gt((a.time, a.time_bound), (b.time, b.time_bound))
}

fn ratio_eq(a: &RatioEntry, b: &RatioEntry) -> bool {
    ratio_pair_eq((a.time, a.time_bound), (b.time, b.time_bound))
}

/// Aggregate statistics of one sweep.
///
/// Stats are **mergeable**: a sweep can be split into shards (see
/// [`Grid::shard`](crate::Grid::shard)), executed in separate processes,
/// serialized across the process boundary, and folded back together with
/// [`SweepStats::merge`] — producing exactly the stats of the unsharded
/// sweep, witnesses included.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SweepStats {
    /// Scenarios executed.
    pub executed: usize,
    /// Scenarios in which the agents met within the horizon.
    pub meetings: usize,
    /// Scenarios in which they did not — for the paper's algorithms under
    /// a sufficient horizon this must be 0, and callers assert so.
    pub failures: usize,
    /// Maximum time over meeting scenarios.
    pub max_time: u64,
    /// Maximum cost over meeting scenarios.
    pub max_cost: u64,
    /// Sum of times over meeting scenarios (for means).
    pub total_time: u128,
    /// Sum of costs over meeting scenarios.
    pub total_cost: u128,
    /// Total edge crossings observed across all scenarios.
    pub crossings: u64,
    /// Total cluster-merge events across all scenarios (gathering sweeps;
    /// 0 for pair sweeps).
    pub merges: u64,
    /// Meeting scenarios whose time exceeded [`Bounds::time`] — or, when
    /// the outcome carried its own [`ScenarioOutcome::time_bound`], that
    /// per-scenario bound.
    pub time_violations: usize,
    /// Meeting scenarios whose cost exceeded [`Bounds::cost`].
    pub cost_violations: usize,
    /// Witness of `max_time` (lowest index on ties).
    pub worst_time: Option<WorstEntry>,
    /// Witness of `max_cost` (lowest index on ties).
    pub worst_cost: Option<WorstEntry>,
    /// Witness of the worst `time / per-scenario bound` ratio, over
    /// outcomes that carried one (exact `u128` cross-multiplication;
    /// lowest index on ties). `None` for pure pair sweeps.
    pub worst_ratio: Option<RatioEntry>,
}

impl SweepStats {
    /// Mean time over meeting scenarios.
    #[must_use]
    pub fn mean_time(&self) -> f64 {
        if self.meetings == 0 {
            0.0
        } else {
            self.total_time as f64 / self.meetings as f64
        }
    }

    /// Mean cost over meeting scenarios.
    #[must_use]
    pub fn mean_cost(&self) -> f64 {
        if self.meetings == 0 {
            0.0
        } else {
            self.total_cost as f64 / self.meetings as f64
        }
    }

    /// Returns `true` if every meeting respected the bounds and every
    /// scenario met.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.failures == 0 && self.time_violations == 0 && self.cost_violations == 0
    }

    /// Folds one indexed outcome into the aggregate. Folding is pure and
    /// index-deterministic: folding the same outcomes in index order
    /// always yields the same stats, regardless of how they were computed.
    pub fn absorb(&mut self, index: usize, outcome: &ScenarioOutcome, bounds: Option<Bounds>) {
        self.executed += 1;
        self.crossings += outcome.crossings;
        self.merges += outcome.merges;
        match outcome.time {
            Some(time) => {
                self.meetings += 1;
                self.total_time += u128::from(time);
                self.total_cost += u128::from(outcome.cost);
                let entry = WorstEntry {
                    index,
                    scenario: outcome.scenario.clone(),
                    time,
                    cost: outcome.cost,
                };
                // Explicit lowest-index tie-break (not first-absorbed-wins)
                // so the documented witness contract survives folds that
                // absorb outcomes out of index order, e.g. shard merges.
                self.max_time = self.max_time.max(time);
                if self
                    .worst_time
                    .as_ref()
                    .is_none_or(|w| time > w.time || (time == w.time && index < w.index))
                {
                    self.worst_time = Some(entry.clone());
                }
                self.max_cost = self.max_cost.max(outcome.cost);
                if self.worst_cost.as_ref().is_none_or(|w| {
                    outcome.cost > w.cost || (outcome.cost == w.cost && index < w.index)
                }) {
                    self.worst_cost = Some(entry);
                }
                // A per-scenario bound overrides the sweep-level time
                // bound: gathering's merge-and-restart bound depends on
                // the fleet, so each outcome is judged against its own.
                if let Some(b) = outcome.time_bound {
                    if time > b {
                        self.time_violations += 1;
                    }
                    let candidate = RatioEntry {
                        index,
                        scenario: outcome.scenario.clone(),
                        time,
                        time_bound: b,
                    };
                    if self.worst_ratio.as_ref().is_none_or(|w| {
                        ratio_gt(&candidate, w) || (ratio_eq(&candidate, w) && index < w.index)
                    }) {
                        self.worst_ratio = Some(candidate);
                    }
                } else if let Some(b) = bounds {
                    if time > b.time {
                        self.time_violations += 1;
                    }
                }
                if let Some(b) = bounds {
                    if outcome.cost > b.cost {
                        self.cost_violations += 1;
                    }
                }
            }
            None => self.failures += 1,
        }
    }

    /// Combines the stats of two disjoint shards of one sweep into the
    /// stats of their union — the associative, commutative fold that makes
    /// multi-process sweeps possible.
    ///
    /// Every field of [`SweepStats`] is an associative fold of per-scenario
    /// contributions (sums and maxima) except the worst-case witnesses,
    /// which carry the lowest-index tie-break: when both shards reach the
    /// same extreme value, the witness with the smaller **global** scenario
    /// index wins, exactly as if the whole sweep had been folded in index
    /// order by [`SweepStats::absorb`].
    #[must_use]
    pub fn merge(&self, other: &SweepStats) -> SweepStats {
        /// Lowest-index-on-ties winner between two optional witnesses,
        /// ranked by the given extreme value.
        fn worst(
            a: &Option<WorstEntry>,
            b: &Option<WorstEntry>,
            value: impl Fn(&WorstEntry) -> u64,
        ) -> Option<WorstEntry> {
            match (a, b) {
                (Some(x), Some(y)) => {
                    let (vx, vy) = (value(x), value(y));
                    if vx > vy || (vx == vy && x.index <= y.index) {
                        Some(x.clone())
                    } else {
                        Some(y.clone())
                    }
                }
                (x, y) => x.clone().or_else(|| y.clone()),
            }
        }
        /// Worst-ratio winner: exact cross-multiplication, lowest index
        /// on exact ties.
        fn worst_ratio(a: &Option<RatioEntry>, b: &Option<RatioEntry>) -> Option<RatioEntry> {
            match (a, b) {
                (Some(x), Some(y)) => {
                    if ratio_gt(x, y) || (ratio_eq(x, y) && x.index <= y.index) {
                        Some(x.clone())
                    } else {
                        Some(y.clone())
                    }
                }
                (x, y) => x.clone().or_else(|| y.clone()),
            }
        }
        SweepStats {
            executed: self.executed + other.executed,
            meetings: self.meetings + other.meetings,
            failures: self.failures + other.failures,
            max_time: self.max_time.max(other.max_time),
            max_cost: self.max_cost.max(other.max_cost),
            total_time: self.total_time + other.total_time,
            total_cost: self.total_cost + other.total_cost,
            crossings: self.crossings + other.crossings,
            merges: self.merges + other.merges,
            time_violations: self.time_violations + other.time_violations,
            cost_violations: self.cost_violations + other.cost_violations,
            worst_time: worst(&self.worst_time, &other.worst_time, |w| w.time),
            worst_cost: worst(&self.worst_cost, &other.worst_cost, |w| w.cost),
            worst_ratio: worst_ratio(&self.worst_ratio, &other.worst_ratio),
        }
    }
}

/// Sequentially folds outcomes (in slice order) into [`SweepStats`] — the
/// reference fold that parallel sweeps must agree with.
#[must_use]
pub fn fold_outcomes(outcomes: &[ScenarioOutcome], bounds: Option<Bounds>) -> SweepStats {
    let mut stats = SweepStats::default();
    for (index, outcome) in outcomes.iter().enumerate() {
        stats.absorb(index, outcome, bounds);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use rendezvous_graph::NodeId;

    fn outcome(time: Option<u64>, cost: u64, crossings: u64) -> ScenarioOutcome {
        ScenarioOutcome::pairwise(
            Scenario::pair(1, 2, NodeId::new(0), NodeId::new(1), 0, 10),
            time,
            cost,
            crossings,
        )
    }

    /// A gathering-style outcome: carries its own merge-and-restart bound
    /// and a merge-event count.
    fn fleet_outcome(time: Option<u64>, cost: u64, bound: u64, merges: u64) -> ScenarioOutcome {
        let mut o = outcome(time, cost, 0);
        o.time_bound = Some(bound);
        o.merges = merges;
        o
    }

    #[test]
    fn fold_tracks_extremes_means_and_failures() {
        let outcomes = vec![
            outcome(Some(4), 2, 0),
            outcome(None, 9, 1),
            outcome(Some(10), 1, 0),
            outcome(Some(10), 8, 2),
        ];
        let bounds = Some(Bounds { time: 9, cost: 100 });
        let stats = fold_outcomes(&outcomes, bounds);
        assert_eq!(stats.executed, 4);
        assert_eq!(stats.meetings, 3);
        assert_eq!(stats.failures, 1);
        assert_eq!(stats.max_time, 10);
        assert_eq!(stats.max_cost, 8);
        assert_eq!(stats.crossings, 3);
        // First scenario reaching the max wins ties.
        assert_eq!(stats.worst_time.as_ref().unwrap().index, 2);
        assert_eq!(stats.worst_cost.as_ref().unwrap().index, 3);
        // Two meetings exceeded the time bound of 9? Only times 10, 10.
        assert_eq!(stats.time_violations, 2);
        assert_eq!(stats.cost_violations, 0);
        assert!(!stats.clean());
        assert!((stats.mean_time() - 8.0).abs() < 1e-9);
        assert!((stats.mean_cost() - (11.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn tie_break_picks_lowest_index_even_when_absorbed_out_of_order() {
        // Simulates a shard merge: the higher-index shard folds first.
        // The witness contract (lowest index on ties) must still hold.
        let a = outcome(Some(10), 5, 0);
        let b = outcome(Some(10), 5, 0);
        let mut stats = SweepStats::default();
        stats.absorb(7, &b, None);
        stats.absorb(2, &a, None);
        assert_eq!(stats.worst_time.as_ref().unwrap().index, 2);
        assert_eq!(stats.worst_cost.as_ref().unwrap().index, 2);
        // In-order folding agrees.
        let ordered = fold_outcomes(&[a, b], None);
        assert_eq!(ordered.worst_time.as_ref().unwrap().index, 0);
        assert_eq!(stats.max_time, ordered.max_time);
    }

    #[test]
    fn merge_equals_one_pass_fold_and_is_associative() {
        let outcomes = vec![
            outcome(Some(4), 2, 0),
            outcome(None, 9, 1),
            outcome(Some(10), 1, 0),
            outcome(Some(10), 8, 2),
            outcome(Some(3), 8, 0),
        ];
        let bounds = Some(Bounds { time: 9, cost: 7 });
        let whole = fold_outcomes(&outcomes, bounds);
        // Split at every point: left ++ right must merge back to `whole`.
        for split in 0..=outcomes.len() {
            let mut left = SweepStats::default();
            let mut right = SweepStats::default();
            for (i, o) in outcomes.iter().enumerate() {
                if i < split {
                    left.absorb(i, o, bounds);
                } else {
                    right.absorb(i, o, bounds);
                }
            }
            assert_eq!(left.merge(&right), whole, "split at {split}");
            // Commutes, because indices carry the order.
            assert_eq!(right.merge(&left), whole, "swapped split at {split}");
        }
        // Associativity over a three-way split.
        let mut parts: [SweepStats; 3] = Default::default();
        for (i, o) in outcomes.iter().enumerate() {
            parts[i % 3].absorb(i, o, bounds);
        }
        let ab_c = parts[0].merge(&parts[1]).merge(&parts[2]);
        let a_bc = parts[0].merge(&parts[1].merge(&parts[2]));
        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c, whole);
    }

    #[test]
    fn merge_tie_breaks_witnesses_by_lowest_global_index() {
        let w = outcome(Some(10), 5, 0);
        let mut low = SweepStats::default();
        low.absorb(3, &w, None);
        let mut high = SweepStats::default();
        high.absorb(11, &w, None);
        // Either merge order: the index-3 witness must win both extremes.
        assert_eq!(low.merge(&high).worst_time.unwrap().index, 3);
        assert_eq!(high.merge(&low).worst_time.unwrap().index, 3);
        assert_eq!(high.merge(&low).worst_cost.unwrap().index, 3);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut stats = SweepStats::default();
        stats.absorb(0, &outcome(Some(7), 4, 1), None);
        let empty = SweepStats::default();
        assert_eq!(stats.merge(&empty), stats);
        assert_eq!(empty.merge(&stats), stats);
    }

    #[test]
    fn sweep_stats_serde_round_trip() {
        let bounds = Some(Bounds { time: 9, cost: 7 });
        let mut stats = fold_outcomes(
            &[
                outcome(Some(4), 2, 0),
                outcome(None, 9, 1),
                outcome(Some(10), 8, 2),
            ],
            bounds,
        );
        // Exercise the u128 string fallback path too.
        stats.total_time += u128::from(u64::MAX) * 3;
        let text = serde_json::to_string(&stats).unwrap();
        let back: SweepStats = serde_json::from_str(&text).unwrap();
        assert_eq!(back, stats);
        // Witnesses survive with their full scenario payload.
        assert_eq!(
            back.worst_time.as_ref().unwrap().scenario,
            stats.worst_time.as_ref().unwrap().scenario
        );
        // And an all-default (witness-free) value round-trips as well.
        let empty = SweepStats::default();
        let back: SweepStats =
            serde_json::from_str(&serde_json::to_string(&empty).unwrap()).unwrap();
        assert_eq!(back, empty);
    }

    /// Per-scenario bounds (gathering): violations are judged against
    /// each outcome's own bound, merge events accumulate, and the
    /// worst-ratio witness is ranked by exact cross-multiplication.
    #[test]
    fn per_scenario_bounds_drive_violations_ratio_and_merges() {
        let outcomes = vec![
            fleet_outcome(Some(10), 4, 40, 1), // ratio 1/4
            fleet_outcome(Some(9), 2, 27, 2),  // ratio 1/3 — the worst
            fleet_outcome(Some(50), 9, 45, 3), // violation! ratio 10/9
            fleet_outcome(None, 0, 45, 0),     // failure, no ratio
        ];
        let stats = fold_outcomes(&outcomes, None);
        assert_eq!(stats.merges, 6);
        assert_eq!(stats.time_violations, 1, "only 50 > 45");
        assert_eq!(stats.failures, 1);
        let w = stats.worst_ratio.as_ref().unwrap();
        assert_eq!((w.index, w.time, w.time_bound), (2, 50, 45));
        // Without the violating outcome, the exact comparison must pick
        // 9/27 == 1/3 over 10/40 == 1/4.
        let stats = fold_outcomes(&outcomes[..2], None);
        assert_eq!(stats.time_violations, 0);
        let w = stats.worst_ratio.as_ref().unwrap();
        assert_eq!((w.index, w.time, w.time_bound), (1, 9, 27));
    }

    /// Exact ratio ties (7/21 == 9/27) break toward the lowest index —
    /// floats would have rounded — and the rule survives merges in both
    /// orders.
    #[test]
    fn ratio_ties_break_by_lowest_index_across_merges() {
        let x = fleet_outcome(Some(7), 1, 21, 0);
        let y = fleet_outcome(Some(9), 1, 27, 0);
        let mut low = SweepStats::default();
        low.absorb(3, &x, None);
        let mut high = SweepStats::default();
        high.absorb(11, &y, None);
        for merged in [low.merge(&high), high.merge(&low)] {
            assert_eq!(merged.worst_ratio.as_ref().unwrap().index, 3);
        }
        // In-order folding agrees with the merge.
        let mut folded = SweepStats::default();
        folded.absorb(3, &x, None);
        folded.absorb(11, &y, None);
        assert_eq!(folded.worst_ratio, low.merge(&high).worst_ratio);
    }

    #[test]
    fn fleet_stats_serde_round_trip_includes_ratio_witness() {
        let mut stats = SweepStats::default();
        stats.absorb(5, &fleet_outcome(Some(12), 7, 36, 2), None);
        let text = serde_json::to_string(&stats).unwrap();
        let back: SweepStats = serde_json::from_str(&text).unwrap();
        assert_eq!(back, stats);
        assert_eq!(back.merges, 2);
        assert_eq!(back.worst_ratio.as_ref().unwrap().time_bound, 36);
        // Byte-identical re-serialization: what shard ledgers rely on.
        assert_eq!(serde_json::to_string(&back).unwrap(), text);
    }

    #[test]
    fn empty_fold_is_clean_zero() {
        let stats = fold_outcomes(&[], None);
        assert_eq!(stats.executed, 0);
        assert!(stats.clean());
        assert_eq!(stats.mean_time(), 0.0);
        assert!(stats.worst_time.is_none());
    }
}
