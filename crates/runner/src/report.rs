//! The one fold: order-independent, keyed aggregation of scenario
//! outcomes into a mergeable [`SweepReport`].
//!
//! Every sweep — pair grids, gathering fleets, topology sweeps — folds
//! into the same report type. Grouping is by a string *fold key*
//! supplied by the workload: plain grids use the empty key (one group),
//! topology sweeps use the graph family (one group per family). Within a
//! group the aggregates are sums, maxima and worst-case witnesses; the
//! witnesses tie-break toward the **lowest global index**, and bound
//! ratios compare by exact `u128` cross-multiplication — never floats —
//! so neither execution order, nor parallelism, nor shard merge order
//! can perturb a single field.

use crate::{Scenario, ScenarioOutcome};
use rendezvous_graph::GraphSpec;
use serde::{Deserialize, Serialize};

/// The paper bounds a sweep (or one piece of it) is checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bounds {
    /// Worst-case time bound (rounds from the earlier agent's start).
    pub time: u64,
    /// Worst-case cost bound (total edge traversals).
    pub cost: u64,
}

/// A worst-case witness: which unit of the workload achieved an extreme
/// value, with everything needed to replay it — the scenario is a full
/// configuration, and `spec` (when the workload swept topologies) is a
/// buildable graph recipe.
///
/// Ties break toward the smallest global `index`, which makes the
/// witness independent of execution order, of parallelism, and of
/// sharding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Witness {
    /// Global index of the unit in the swept workload.
    pub index: usize,
    /// The graph recipe the unit ran on, for topology workloads (`None`
    /// when the whole sweep shares one graph).
    pub spec: Option<GraphSpec>,
    /// The adversarial configuration.
    pub scenario: Scenario,
    /// Measured time.
    pub time: u64,
    /// Measured cost.
    pub cost: u64,
    /// The time bound this outcome was judged against: the outcome's own
    /// per-scenario bound (gathering's merge-and-restart bound) when it
    /// carried one, else the piece-level bound, else `None`.
    pub time_bound: Option<u64>,
    /// The cost bound this outcome was judged against, if any.
    pub cost_bound: Option<u64>,
}

impl Witness {
    /// The `time/bound` cell experiments render for a ratio witness —
    /// the bound varies per scenario (or per spec), so a single number
    /// would lie.
    ///
    /// # Panics
    ///
    /// Panics on a witness without a bound; only witnesses with one ever
    /// enter the [`GroupStats::worst_ratio`] slot.
    #[must_use]
    pub fn ratio_label(&self) -> String {
        format!(
            "{}/{}",
            self.time,
            self.time_bound.expect("ratio witnesses carry a bound")
        )
    }
}

/// `a.0/a.1 > b.0/b.1` by `u128` cross-multiplication — exact, so merge
/// order can never flip a comparison the way float rounding could.
pub(crate) fn ratio_pair_gt(a: (u64, u64), b: (u64, u64)) -> bool {
    u128::from(a.0) * u128::from(b.1) > u128::from(b.0) * u128::from(a.1)
}

/// `a.0/a.1 == b.0/b.1`, exactly.
pub(crate) fn ratio_pair_eq(a: (u64, u64), b: (u64, u64)) -> bool {
    u128::from(a.0) * u128::from(b.1) == u128::from(b.0) * u128::from(a.1)
}

/// The ratio key of a witness: `(time, time_bound)`. Only witnesses with
/// a bound ever enter the ratio slot.
fn ratio_of(w: &Witness) -> (u64, u64) {
    (w.time, w.time_bound.expect("ratio witnesses carry a bound"))
}

fn ratio_gt(a: &Witness, b: &Witness) -> bool {
    ratio_pair_gt(ratio_of(a), ratio_of(b))
}

fn ratio_eq(a: &Witness, b: &Witness) -> bool {
    ratio_pair_eq(ratio_of(a), ratio_of(b))
}

/// Aggregate statistics of one fold group — one graph family of a
/// topology sweep, or the single (empty-key) group of a plain grid
/// sweep.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GroupStats {
    /// The group's fold key (empty for single-group sweeps).
    pub key: String,
    /// Scenarios executed.
    pub executed: usize,
    /// Scenarios in which the agents met (gathered) within the horizon.
    pub meetings: usize,
    /// Scenarios in which they did not — for the paper's algorithms under
    /// a sufficient horizon this must be 0, and callers assert so.
    pub failures: usize,
    /// Maximum time over meeting scenarios.
    pub max_time: u64,
    /// Maximum cost over meeting scenarios.
    pub max_cost: u64,
    /// Sum of times over meeting scenarios (for means).
    pub total_time: u128,
    /// Sum of costs over meeting scenarios.
    pub total_cost: u128,
    /// Total edge crossings observed across all scenarios.
    pub crossings: u64,
    /// Total cluster-merge events across all scenarios (gathering
    /// sweeps; 0 for pair sweeps).
    pub merges: u64,
    /// Meeting scenarios whose time exceeded their bound — the outcome's
    /// own per-scenario bound when it carried one, else the piece-level
    /// [`Bounds::time`].
    pub time_violations: usize,
    /// Meeting scenarios whose cost exceeded the piece-level
    /// [`Bounds::cost`].
    pub cost_violations: usize,
    /// Witness of `max_time` (lowest global index on ties).
    pub worst_time: Option<Witness>,
    /// Witness of `max_cost` (lowest global index on ties).
    pub worst_cost: Option<Witness>,
    /// Witness of the largest `time / time bound` ratio over outcomes
    /// that had a bound to be judged against — the scenario that came
    /// closest to (or past) the guarantee. Exact `u128`
    /// cross-multiplication; lowest global index on ties. `None` when no
    /// outcome carried a bound.
    pub worst_ratio: Option<Witness>,
}

impl GroupStats {
    fn new(key: &str) -> GroupStats {
        GroupStats {
            key: key.to_string(),
            ..GroupStats::default()
        }
    }

    /// Mean time over meeting scenarios.
    #[must_use]
    // analyze: allow(d3) — display-only mean; merges and comparisons use the exact
    // integer totals (`ratio_pair_gt/eq`), never this value
    pub fn mean_time(&self) -> f64 {
        if self.meetings == 0 {
            0.0
        } else {
            // analyze: allow(d3) — rendering of exact integer totals
            self.total_time as f64 / self.meetings as f64
        }
    }

    /// Mean cost over meeting scenarios.
    #[must_use]
    // analyze: allow(d3) — display-only mean; merges and comparisons use the exact
    // integer totals (`ratio_pair_gt/eq`), never this value
    pub fn mean_cost(&self) -> f64 {
        if self.meetings == 0 {
            0.0
        } else {
            // analyze: allow(d3) — rendering of exact integer totals
            self.total_cost as f64 / self.meetings as f64
        }
    }

    /// Returns `true` if every scenario met and stayed within its bounds.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.failures == 0 && self.time_violations == 0 && self.cost_violations == 0
    }

    /// Folds one indexed outcome into the group. Folding is pure and
    /// index-deterministic: folding the same outcomes always yields the
    /// same stats, in whatever order they arrive.
    pub fn absorb(
        &mut self,
        index: usize,
        spec: Option<&GraphSpec>,
        outcome: &ScenarioOutcome,
        bounds: Option<Bounds>,
    ) {
        self.executed += 1;
        self.crossings += outcome.crossings;
        self.merges += outcome.merges;
        let Some(time) = outcome.time else {
            self.failures += 1;
            return;
        };
        self.meetings += 1;
        self.total_time += u128::from(time);
        self.total_cost += u128::from(outcome.cost);
        self.max_time = self.max_time.max(time);
        self.max_cost = self.max_cost.max(outcome.cost);
        // A per-scenario bound overrides the piece-level time bound:
        // gathering's merge-and-restart bound depends on the fleet, so
        // each outcome is judged against its own.
        let time_bound = outcome.time_bound.or(bounds.map(|b| b.time));
        let cost_bound = bounds.map(|b| b.cost);
        if time_bound.is_some_and(|b| time > b) {
            self.time_violations += 1;
        }
        if cost_bound.is_some_and(|b| outcome.cost > b) {
            self.cost_violations += 1;
        }
        let witness = Witness {
            index,
            spec: spec.cloned(),
            scenario: outcome.scenario.clone(),
            time,
            cost: outcome.cost,
            time_bound,
            cost_bound,
        };
        // Explicit lowest-index tie-break (not first-absorbed-wins) so
        // the documented witness contract survives folds that absorb
        // outcomes out of index order, e.g. shard merges.
        replace_if(
            &mut self.worst_time,
            &witness,
            |a, b| a.time > b.time,
            |a, b| a.time == b.time,
        );
        replace_if(
            &mut self.worst_cost,
            &witness,
            |a, b| a.cost > b.cost,
            |a, b| a.cost == b.cost,
        );
        if time_bound.is_some() {
            replace_if(&mut self.worst_ratio, &witness, ratio_gt, ratio_eq);
        }
    }

    #[must_use]
    fn merge(&self, other: &GroupStats) -> GroupStats {
        assert_eq!(self.key, other.key, "merging different fold groups");
        GroupStats {
            key: self.key.clone(),
            executed: self.executed + other.executed,
            meetings: self.meetings + other.meetings,
            failures: self.failures + other.failures,
            max_time: self.max_time.max(other.max_time),
            max_cost: self.max_cost.max(other.max_cost),
            total_time: self.total_time + other.total_time,
            total_cost: self.total_cost + other.total_cost,
            crossings: self.crossings + other.crossings,
            merges: self.merges + other.merges,
            time_violations: self.time_violations + other.time_violations,
            cost_violations: self.cost_violations + other.cost_violations,
            worst_time: merge_witness(
                &self.worst_time,
                &other.worst_time,
                |a, b| a.time > b.time,
                |a, b| a.time == b.time,
            ),
            worst_cost: merge_witness(
                &self.worst_cost,
                &other.worst_cost,
                |a, b| a.cost > b.cost,
                |a, b| a.cost == b.cost,
            ),
            worst_ratio: merge_witness(&self.worst_ratio, &other.worst_ratio, ratio_gt, ratio_eq),
        }
    }
}

/// Installs `candidate` into `slot` if it beats the incumbent (or ties at
/// a smaller global index).
fn replace_if(
    slot: &mut Option<Witness>,
    candidate: &Witness,
    gt: impl Fn(&Witness, &Witness) -> bool,
    eq: impl Fn(&Witness, &Witness) -> bool,
) {
    let wins = match slot {
        None => true,
        Some(w) => gt(candidate, w) || (eq(candidate, w) && candidate.index < w.index),
    };
    if wins {
        *slot = Some(candidate.clone());
    }
}

/// Lowest-index-on-ties winner between two optional witnesses.
fn merge_witness(
    a: &Option<Witness>,
    b: &Option<Witness>,
    gt: impl Fn(&Witness, &Witness) -> bool,
    eq: impl Fn(&Witness, &Witness) -> bool,
) -> Option<Witness> {
    match (a, b) {
        (Some(x), Some(y)) => {
            if gt(x, y) || (eq(x, y) && x.index <= y.index) {
                Some(x.clone())
            } else {
                Some(y.clone())
            }
        }
        (x, y) => x.clone().or_else(|| y.clone()),
    }
}

/// The result of one [`Runner::sweep`](crate::Runner::sweep): per-key
/// aggregates, kept **sorted by key** — so two reports folded from the
/// same outcomes are structurally equal and their JSON is byte-equal.
///
/// Reports are **mergeable**: split a workload into contiguous shards
/// (see [`Workload::shard`](crate::Workload::shard)), sweep each in its
/// own process, serialize, [`SweepReport::merge`] — the result equals
/// the unsharded sweep field for field, witnesses and their
/// lowest-global-index tie-breaks included (property-tested in `tests/`
/// and CI-diffed end-to-end against the `experiments` binary).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
#[must_use = "a sweep report is the sweep's only output; dropping it discards the fold"]
pub struct SweepReport {
    /// Per-key aggregates, sorted by key.
    pub groups: Vec<GroupStats>,
}

impl SweepReport {
    /// Folds one globally-indexed outcome into its key's group.
    pub fn absorb(
        &mut self,
        key: &str,
        index: usize,
        spec: Option<&GraphSpec>,
        outcome: &ScenarioOutcome,
        bounds: Option<Bounds>,
    ) {
        let slot = match self.groups.binary_search_by(|g| g.key.as_str().cmp(key)) {
            Ok(i) => i,
            Err(i) => {
                self.groups.insert(i, GroupStats::new(key));
                i
            }
        };
        self.groups[slot].absorb(index, spec, outcome, bounds);
    }

    /// Combines the reports of two disjoint index ranges of one sweep —
    /// associative and commutative, since every field is a sum, a max, or
    /// an index-tie-broken witness, and groups stay sorted by key.
    pub fn merge(&self, other: &SweepReport) -> SweepReport {
        let mut groups = Vec::with_capacity(self.groups.len().max(other.groups.len()));
        let (mut i, mut j) = (0, 0);
        while i < self.groups.len() && j < other.groups.len() {
            let (a, b) = (&self.groups[i], &other.groups[j]);
            match a.key.cmp(&b.key) {
                std::cmp::Ordering::Less => {
                    groups.push(a.clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    groups.push(b.clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    groups.push(a.merge(b));
                    i += 1;
                    j += 1;
                }
            }
        }
        groups.extend_from_slice(&self.groups[i..]);
        groups.extend_from_slice(&other.groups[j..]);
        SweepReport { groups }
    }

    /// The aggregate of one key's group, if that key was swept.
    #[must_use]
    pub fn group(&self, key: &str) -> Option<&GroupStats> {
        self.groups
            .binary_search_by(|g| g.key.as_str().cmp(key))
            .ok()
            .map(|i| &self.groups[i])
    }

    /// The single group of an ungrouped (empty-key) sweep — or an empty
    /// default when the report folded nothing (a shard of a tiny workload
    /// may legitimately execute zero units).
    ///
    /// # Panics
    ///
    /// Panics if the report holds more than one group: a grouped report
    /// has no single "the" stats, ask for a [`SweepReport::group`].
    #[must_use]
    pub fn solo(&self) -> GroupStats {
        assert!(
            self.groups.len() <= 1,
            "solo() on a report with {} groups — use group(key)",
            self.groups.len()
        );
        self.groups.first().cloned().unwrap_or_default()
    }

    /// Total scenarios executed across all groups.
    #[must_use]
    pub fn executed(&self) -> usize {
        self.groups.iter().map(|g| g.executed).sum()
    }

    /// Total non-meeting scenarios across all groups.
    #[must_use]
    pub fn failures(&self) -> usize {
        self.groups.iter().map(|g| g.failures).sum()
    }

    /// Total bound violations (time + cost) across all groups.
    #[must_use]
    pub fn violations(&self) -> usize {
        self.groups
            .iter()
            .map(|g| g.time_violations + g.cost_violations)
            .sum()
    }

    /// `true` when every scenario met and stayed within its bounds.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.failures() == 0 && self.violations() == 0
    }
}

/// Sequentially folds outcomes (at their slice positions, under the
/// empty key) into a [`SweepReport`] — the reference fold that parallel
/// and sharded sweeps must agree with.
pub fn fold_outcomes(outcomes: &[ScenarioOutcome], bounds: Option<Bounds>) -> SweepReport {
    let mut report = SweepReport::default();
    for (index, outcome) in outcomes.iter().enumerate() {
        report.absorb("", index, None, outcome, bounds);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use rendezvous_graph::NodeId;

    fn outcome(time: Option<u64>, cost: u64, crossings: u64) -> ScenarioOutcome {
        ScenarioOutcome::pairwise(
            Scenario::pair(1, 2, NodeId::new(0), NodeId::new(1), 0, 10),
            time,
            cost,
            crossings,
        )
    }

    /// A gathering-style outcome: carries its own merge-and-restart bound
    /// and a merge-event count.
    fn fleet_outcome(time: Option<u64>, cost: u64, bound: u64, merges: u64) -> ScenarioOutcome {
        let mut o = outcome(time, cost, 0);
        o.time_bound = Some(bound);
        o.merges = merges;
        o
    }

    #[test]
    fn fold_tracks_extremes_means_and_failures() {
        let outcomes = vec![
            outcome(Some(4), 2, 0),
            outcome(None, 9, 1),
            outcome(Some(10), 1, 0),
            outcome(Some(10), 8, 2),
        ];
        let bounds = Some(Bounds { time: 9, cost: 100 });
        let stats = fold_outcomes(&outcomes, bounds).solo();
        assert_eq!(stats.executed, 4);
        assert_eq!(stats.meetings, 3);
        assert_eq!(stats.failures, 1);
        assert_eq!(stats.max_time, 10);
        assert_eq!(stats.max_cost, 8);
        assert_eq!(stats.crossings, 3);
        // First scenario reaching the max wins ties.
        assert_eq!(stats.worst_time.as_ref().unwrap().index, 2);
        assert_eq!(stats.worst_cost.as_ref().unwrap().index, 3);
        // Only times 10, 10 exceeded the time bound of 9.
        assert_eq!(stats.time_violations, 2);
        assert_eq!(stats.cost_violations, 0);
        assert!(!stats.clean());
        assert!((stats.mean_time() - 8.0).abs() < 1e-9);
        assert!((stats.mean_cost() - (11.0 / 3.0)).abs() < 1e-9);
        // With sweep-level bounds every meeting has a ratio witness; the
        // worst is 10/9 at index 2 (lowest index of the tie).
        let w = stats.worst_ratio.as_ref().unwrap();
        assert_eq!((w.index, w.time, w.time_bound), (2, 10, Some(9)));
    }

    #[test]
    fn tie_break_picks_lowest_index_even_when_absorbed_out_of_order() {
        // Simulates a shard merge: the higher-index shard folds first.
        // The witness contract (lowest index on ties) must still hold.
        let a = outcome(Some(10), 5, 0);
        let b = outcome(Some(10), 5, 0);
        let mut report = SweepReport::default();
        report.absorb("", 7, None, &b, None);
        report.absorb("", 2, None, &a, None);
        let stats = report.solo();
        assert_eq!(stats.worst_time.as_ref().unwrap().index, 2);
        assert_eq!(stats.worst_cost.as_ref().unwrap().index, 2);
        // In-order folding agrees.
        let ordered = fold_outcomes(&[a, b], None).solo();
        assert_eq!(ordered.worst_time.as_ref().unwrap().index, 0);
        assert_eq!(stats.max_time, ordered.max_time);
    }

    #[test]
    fn merge_equals_one_pass_fold_and_is_associative() {
        let outcomes = vec![
            outcome(Some(4), 2, 0),
            outcome(None, 9, 1),
            outcome(Some(10), 1, 0),
            outcome(Some(10), 8, 2),
            outcome(Some(3), 8, 0),
        ];
        let bounds = Some(Bounds { time: 9, cost: 7 });
        let whole = fold_outcomes(&outcomes, bounds);
        // Split at every point: left ++ right must merge back to `whole`.
        for split in 0..=outcomes.len() {
            let mut left = SweepReport::default();
            let mut right = SweepReport::default();
            for (i, o) in outcomes.iter().enumerate() {
                if i < split {
                    left.absorb("", i, None, o, bounds);
                } else {
                    right.absorb("", i, None, o, bounds);
                }
            }
            assert_eq!(left.merge(&right), whole, "split at {split}");
            // Commutes, because indices carry the order.
            assert_eq!(right.merge(&left), whole, "swapped split at {split}");
        }
        // Associativity over a three-way split.
        let mut parts: [SweepReport; 3] = Default::default();
        for (i, o) in outcomes.iter().enumerate() {
            parts[i % 3].absorb("", i, None, o, bounds);
        }
        let ab_c = parts[0].merge(&parts[1]).merge(&parts[2]);
        let a_bc = parts[0].merge(&parts[1].merge(&parts[2]));
        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c, whole);
    }

    #[test]
    fn merge_tie_breaks_witnesses_by_lowest_global_index() {
        let w = outcome(Some(10), 5, 0);
        let mut low = SweepReport::default();
        low.absorb("", 3, None, &w, None);
        let mut high = SweepReport::default();
        high.absorb("", 11, None, &w, None);
        // Either merge order: the index-3 witness must win both extremes.
        assert_eq!(low.merge(&high).solo().worst_time.unwrap().index, 3);
        assert_eq!(high.merge(&low).solo().worst_time.unwrap().index, 3);
        assert_eq!(high.merge(&low).solo().worst_cost.unwrap().index, 3);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut report = SweepReport::default();
        report.absorb("", 0, None, &outcome(Some(7), 4, 1), None);
        let empty = SweepReport::default();
        assert_eq!(report.merge(&empty), report);
        assert_eq!(empty.merge(&report), report);
    }

    #[test]
    fn keyed_groups_stay_sorted_and_merge_by_key() {
        let bounds = Some(Bounds { time: 50, cost: 50 });
        let mut whole = SweepReport::default();
        let mut parts = [
            SweepReport::default(),
            SweepReport::default(),
            SweepReport::default(),
        ];
        let samples = [
            ("ring", 0, outcome(Some(4), 2, 0)),
            ("tree", 1, outcome(Some(9), 9, 0)),
            ("ring", 2, outcome(Some(4), 1, 0)),
            ("tree", 3, outcome(None, 0, 0)),
            ("ring", 4, outcome(Some(2), 8, 0)),
        ];
        for (k, (key, idx, o)) in samples.iter().enumerate() {
            whole.absorb(key, *idx, None, o, bounds);
            parts[k % 3].absorb(key, *idx, None, o, bounds);
        }
        let ab_c = parts[0].merge(&parts[1]).merge(&parts[2]);
        let a_bc = parts[0].merge(&parts[1].merge(&parts[2]));
        let cba = parts[2].merge(&parts[1]).merge(&parts[0]);
        assert_eq!(ab_c, whole);
        assert_eq!(a_bc, whole);
        assert_eq!(cba, whole);
        // Groups stay sorted, so JSON is byte-stable.
        let keys: Vec<&str> = whole.groups.iter().map(|g| g.key.as_str()).collect();
        assert_eq!(keys, ["ring", "tree"]);
        assert_eq!(whole.merge(&SweepReport::default()), whole);
        assert_eq!(whole.executed(), 5);
        assert_eq!(whole.failures(), 1);
        assert_eq!(whole.group("ring").unwrap().executed, 3);
        assert!(whole.group("torus").is_none());
        assert!(!whole.clean());
    }

    #[test]
    #[should_panic(expected = "use group(key)")]
    fn solo_rejects_grouped_reports() {
        let mut report = SweepReport::default();
        report.absorb("a", 0, None, &outcome(Some(1), 1, 0), None);
        report.absorb("b", 1, None, &outcome(Some(1), 1, 0), None);
        let _ = report.solo();
    }

    /// Per-scenario bounds (gathering): violations are judged against
    /// each outcome's own bound, merge events accumulate, and the
    /// worst-ratio witness is ranked by exact cross-multiplication.
    #[test]
    fn per_scenario_bounds_drive_violations_ratio_and_merges() {
        let outcomes = vec![
            fleet_outcome(Some(10), 4, 40, 1), // ratio 1/4
            fleet_outcome(Some(9), 2, 27, 2),  // ratio 1/3 — the worst
            fleet_outcome(Some(50), 9, 45, 3), // violation! ratio 10/9
            fleet_outcome(None, 0, 45, 0),     // failure, no ratio
        ];
        let stats = fold_outcomes(&outcomes, None).solo();
        assert_eq!(stats.merges, 6);
        assert_eq!(stats.time_violations, 1, "only 50 > 45");
        assert_eq!(stats.failures, 1);
        let w = stats.worst_ratio.as_ref().unwrap();
        assert_eq!((w.index, w.time, w.time_bound), (2, 50, Some(45)));
        // Without the violating outcome, the exact comparison must pick
        // 9/27 == 1/3 over 10/40 == 1/4.
        let stats = fold_outcomes(&outcomes[..2], None).solo();
        assert_eq!(stats.time_violations, 0);
        let w = stats.worst_ratio.as_ref().unwrap();
        assert_eq!((w.index, w.time, w.time_bound), (1, 9, Some(27)));
    }

    /// Exact ratio ties (7/21 == 9/27) break toward the lowest index —
    /// floats would have rounded — and the rule survives merges in both
    /// orders.
    #[test]
    fn ratio_ties_break_by_lowest_index_across_merges() {
        let x = fleet_outcome(Some(7), 1, 21, 0);
        let y = fleet_outcome(Some(9), 1, 27, 0);
        let mut low = SweepReport::default();
        low.absorb("", 3, None, &x, None);
        let mut high = SweepReport::default();
        high.absorb("", 11, None, &y, None);
        for merged in [low.merge(&high), high.merge(&low)] {
            assert_eq!(merged.solo().worst_ratio.as_ref().unwrap().index, 3);
        }
        // In-order folding agrees with the merge.
        let mut folded = SweepReport::default();
        folded.absorb("", 3, None, &x, None);
        folded.absorb("", 11, None, &y, None);
        assert_eq!(
            folded.solo().worst_ratio,
            low.merge(&high).solo().worst_ratio
        );
    }

    /// A per-scenario bound overrides the piece-level one for the time
    /// violation check and the ratio witness; the piece-level cost bound
    /// still applies.
    #[test]
    fn per_scenario_bounds_override_piece_bounds() {
        let bounds = Some(Bounds {
            time: 100,
            cost: 100,
        });
        let mut report = SweepReport::default();
        let mut violating = outcome(Some(30), 5, 0);
        violating.time_bound = Some(25); // beyond its own bound…
        violating.merges = 2;
        let mut clean = outcome(Some(10), 5, 0);
        clean.time_bound = Some(40); // …this one within its own
        clean.merges = 1;
        report.absorb("", 0, None, &violating, bounds);
        report.absorb("", 1, None, &clean, bounds);
        let stats = report.solo();
        assert_eq!(
            stats.time_violations, 1,
            "30 > 25 violates even though 30 < 100"
        );
        assert_eq!(stats.merges, 3);
        let w = stats.worst_ratio.as_ref().unwrap();
        assert_eq!((w.time, w.time_bound), (30, Some(25)), "30/25 > 10/40");
        assert!(!stats.clean());
    }

    #[test]
    fn report_serde_round_trip_is_byte_identical() {
        let bounds = Some(Bounds { time: 9, cost: 7 });
        let mut report = fold_outcomes(
            &[
                outcome(Some(4), 2, 0),
                outcome(None, 9, 1),
                outcome(Some(10), 8, 2),
            ],
            bounds,
        );
        // A topology-style group with a spec-carrying witness.
        let spec = GraphSpec::permuted(GraphSpec::Ring(rendezvous_graph::RingSpec { n: 5 }), 9);
        report.absorb(
            "permuted-ring",
            12,
            Some(&spec),
            &outcome(Some(12), 7, 0),
            Some(Bounds { time: 40, cost: 60 }),
        );
        // Exercise the u128 string fallback path too.
        report.groups[0].total_time += u128::from(u64::MAX) * 3;
        let text = serde_json::to_string(&report).unwrap();
        let back: SweepReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, report);
        // Byte-identical re-serialization: what shard ledgers rely on.
        assert_eq!(serde_json::to_string(&back).unwrap(), text);
        // The witness's spec survives as a buildable recipe.
        let w = back
            .group("permuted-ring")
            .unwrap()
            .worst_time
            .clone()
            .unwrap();
        assert_eq!(w.spec.unwrap().build().unwrap().node_count(), 5);
        // And an all-default (witness-free) report round-trips as well.
        let empty = SweepReport::default();
        let back: SweepReport =
            serde_json::from_str(&serde_json::to_string(&empty).unwrap()).unwrap();
        assert_eq!(back, empty);
    }

    #[test]
    fn empty_fold_is_clean_zero() {
        let report = fold_outcomes(&[], None);
        let stats = report.solo();
        assert_eq!(stats.executed, 0);
        assert!(stats.clean());
        assert!(report.clean());
        assert_eq!(stats.mean_time(), 0.0);
        assert!(stats.worst_time.is_none());
    }
}
