//! The one sweep abstraction: a [`Workload`] is any index-stable, capped,
//! shardable source of scenarios.
//!
//! Every experiment in this workspace has the same shape — enumerate an
//! adversarial configuration space, run each configuration, fold
//! worst-case witnesses, compare against the paper's time–cost bounds.
//! The spaces differ (label/start/delay grids, k-agent fleets, hundreds
//! of seeded topologies), but the pipeline does not, so the pipeline is
//! defined **once** over this trait:
//!
//! ```text
//! enumerate (Workload::pieces) → run (PieceExecutor) → fold (SweepReport)
//!     → shard (Workload::shard) → merge (SweepReport::merge)
//! ```
//!
//! A workload exposes its units as a virtual list indexed `0..size()`:
//! unit `i` is always the same `(key, context, Scenario)` triple, no
//! matter which process enumerates it or which contiguous range it lands
//! in. That index stability is what makes everything downstream
//! deterministic: [`Runner::sweep`](crate::Runner::sweep) folds outcomes
//! at their global indices, worst-case witnesses tie-break toward the
//! lowest global index, and [`SweepReport::merge`](crate::SweepReport::merge)
//! reassembles sharded sweeps byte-identically.
//!
//! Two implementations ship here:
//!
//! * [`Grid`](crate::Grid) — one graph, scenarios enumerated from label
//!   pairs × start pairs × delays (pair mode) or fleet sizes × rotations ×
//!   delay phases (fleet mode). One piece, empty fold key.
//! * [`TopoGrid`](crate::TopoGrid) — many graphs: the concatenation of
//!   per-[`GraphSpec`](rendezvous_graph::GraphSpec) grids, each built
//!   once. One piece per spec a range touches; the fold key is the spec's
//!   graph family, so the report groups per family.

use crate::grid::strided;
use crate::topo::TopoEntry;
use crate::{Bounds, Runner, RunnerError, Scenario, ScenarioOutcome};
use serde::{Deserialize, Serialize};

/// A contiguous run of one workload's units sharing a single context —
/// what [`Runner::sweep`](crate::Runner::sweep) hands to the executor.
///
/// A [`Grid`](crate::Grid) range is always one piece; a
/// [`TopoGrid`](crate::TopoGrid) range yields one piece per spec it
/// touches (shard boundaries may fall inside a spec's scenario list).
#[derive(Debug)]
pub struct WorkPiece<'w> {
    /// Global workload index of `scenarios[0]`.
    pub offset: usize,
    /// Fold key of every unit in the piece: the empty string for
    /// single-group workloads, the graph family for topology sweeps.
    /// [`SweepReport`](crate::SweepReport) groups its aggregates by this.
    pub key: &'w str,
    /// The topology context — the built graph, its spec, its grid — when
    /// the workload sweeps many graphs; `None` for plain grids.
    pub entry: Option<&'w TopoEntry>,
    /// The piece's scenarios, in global index order.
    pub scenarios: Vec<Scenario>,
}

/// Which kind of workload produced a sweep — the discriminant shard
/// ledgers store so replay can detect a record that came from a
/// different sweep sequence. Serializable: the fabric's lease protocol
/// sends it over the wire so coordinator and workers can agree they are
/// sweeping the same space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// A scenario [`Grid`](crate::Grid) on one graph (pair or fleet mode).
    Grid,
    /// A [`TopoGrid`](crate::TopoGrid) over many graphs.
    Topo,
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadKind::Grid => write!(f, "grid"),
            WorkloadKind::Topo => write!(f, "topo"),
        }
    }
}

/// A workload's self-description: its kind, a content digest of the
/// parameters that define the swept space, and the two sizes (pre-cap
/// and post-cap). Shard ledgers record this next to each partial fold so
/// a merge or replay against a *different* sweep sequence fails loudly
/// instead of folding garbage; the fabric's lease protocol carries it in
/// every work request so a coordinator never hands out ranges of a space
/// the worker is not actually enumerating; the result store keys cached
/// reports by it.
///
/// The sizes alone are *not* a sound identity — two grids on the same
/// graph with different horizons or label values can enumerate the same
/// number of units — which is why the `digest` folds the actual
/// defining content (horizon, labels, starts, delays, caps, fleet axes;
/// per-spec identities for topology sweeps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkloadMeta {
    /// What kind of workload this is.
    pub kind: WorkloadKind,
    /// FNV-1a fold of the workload's defining parameters (see
    /// [`Fnv1a`]); equal spaces hash equal in every process.
    pub digest: u64,
    /// Size of the space before any sampling cap (saturating).
    pub full_size: usize,
    /// Units the workload actually yields (caps applied) — equals
    /// [`Workload::size`].
    pub size: usize,
}

impl WorkloadMeta {
    /// The canonical printable fingerprint of this workload — the one
    /// spelling shared by the fabric checkpoint diagnostics, the
    /// `--plan` preview and the result store's content addresses, so a
    /// regression in any one of them is a disagreement with the others.
    ///
    /// Format: `{kind}-{digest:016x}-f{full_size}-s{size}`.
    #[must_use]
    pub fn fingerprint(&self) -> String {
        format!(
            "{}-{:016x}-f{}-s{}",
            self.kind, self.digest, self.full_size, self.size
        )
    }
}

/// A streaming FNV-1a 64-bit hasher — the workspace's canonical content
/// digest. Chosen over `std`'s `DefaultHasher` because its output is
/// pinned by the algorithm, not by the standard library version: every
/// process (and every future build) folds the same parameters to the
/// same `u64`, which is what lets digests serve as cross-process cache
/// keys and wire fingerprints.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Starts a digest at the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Folds raw bytes into the digest.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Folds one `u64`, big-endian.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_be_bytes());
    }

    /// Folds one `usize` (widened — never truncates).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(u64::try_from(v).expect("usize fits in u64"));
    }

    /// The digest of everything written so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Fnv1a {
        Fnv1a::new()
    }
}

/// An index-stable, capped, shardable source of `(global index, context,
/// Scenario)` units — the single abstraction behind every sweep.
///
/// # Contract
///
/// * **Index stability.** Unit `i` of `0..size()` is always the same
///   scenario with the same key and context; enumeration applies any
///   sampling cap *before* indexing, so every process that builds the
///   same workload sees the same list.
/// * **Pieces partition.** `pieces(lo, hi)` covers exactly `[lo, hi)` in
///   global order with disjoint contiguous pieces (`piece.offset` rises,
///   scenarios concatenate to the range).
/// * **Shards partition.** The `of` ranges `shard(0, of) .. shard(of-1,
///   of)` tile `[0, size())` in order, balanced to within one unit.
///
/// Under that contract, [`Runner::sweep`](crate::Runner::sweep) over any
/// split of the index space merges back to the unsharded
/// [`SweepReport`](crate::SweepReport) field for field — witnesses and
/// their lowest-global-index tie-breaks included.
pub trait Workload: Sync {
    /// Total units the workload yields (sampling caps applied).
    fn size(&self) -> usize;

    /// The workload's ledger fingerprint.
    fn meta(&self) -> WorkloadMeta;

    /// Cuts the global index range `[lo, hi)` into contiguous pieces, in
    /// global order.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi > self.size()`.
    fn pieces(&self, lo: usize, hi: usize) -> Vec<WorkPiece<'_>>;

    /// The global index range of shard `shard` of `of`: the balanced
    /// contiguous partition every workload shares (same stride rule as
    /// the sampling cap), so all workload kinds cut their index spaces
    /// identically.
    ///
    /// # Panics
    ///
    /// Panics if `of == 0` or `shard >= of`.
    fn shard(&self, shard: usize, of: usize) -> (usize, usize) {
        assert!(of > 0, "cannot split a workload into zero shards");
        assert!(
            shard < of,
            "shard index {shard} out of range for {of} shards"
        );
        let len = self.size();
        (strided(shard, len, of), strided(shard + 1, len, of))
    }

    /// Cuts the global index space `[0, size())` into contiguous lease
    /// ranges of at most `chunk` units — the fabric coordinator's
    /// dispatch granularity. Unlike [`Workload::shard`]'s fixed balanced
    /// partition, these small ranges are handed out dynamically, so
    /// wildly uneven pieces (a topology sweep mixing tiny rings with
    /// dense tori) balance themselves across however many workers pull
    /// them. Any contiguous ordered partition merges back byte-identically
    /// ([`SweepReport::merge`](crate::SweepReport::merge) is associative),
    /// so the chunk size is purely a scheduling knob.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    fn lease_ranges(&self, chunk: usize) -> Vec<(usize, usize)> {
        assert!(chunk > 0, "lease chunks must hold at least one unit");
        let len = self.size();
        (0..len.div_ceil(chunk))
            .map(|i| (i * chunk, ((i + 1) * chunk).min(len)))
            .collect()
    }
}

/// Executes the pieces of a [`Workload`] — the seam between the generic
/// sweep pipeline and the algorithm under test.
///
/// Per-scenario [`Executor`](crate::Executor)s get this for free via the
/// blanket impl (no sweep-level bounds; per-outcome bounds still apply).
/// Wrap one in [`Bounded`](crate::Bounded) to attach sweep-level
/// [`Bounds`]; implement the trait directly when each piece needs its own
/// machinery (topology sweeps build the algorithm per entry on the
/// piece's cached graph).
pub trait PieceExecutor: Sync {
    /// Runs `piece.scenarios` (in order) and returns the outcomes **in
    /// input order**, together with the bounds the piece's outcomes are
    /// judged against (`None` when only per-outcome bounds apply).
    ///
    /// `runner` is the executor to use for the batch itself (e.g. via
    /// [`Runner::outcomes`]); the sweep passes a sequential one when it
    /// is already parallel across pieces.
    ///
    /// # Errors
    ///
    /// Any configuration or simulation error, which aborts the sweep.
    fn run_piece(
        &self,
        runner: &Runner,
        piece: &WorkPiece<'_>,
    ) -> Result<(Vec<ScenarioOutcome>, Option<Bounds>), RunnerError>;
}

impl<E: crate::Executor> PieceExecutor for E {
    fn run_piece(
        &self,
        runner: &Runner,
        piece: &WorkPiece<'_>,
    ) -> Result<(Vec<ScenarioOutcome>, Option<Bounds>), RunnerError> {
        runner.outcomes(self, &piece.scenarios).map(|o| (o, None))
    }
}

/// Attaches sweep-level [`Bounds`] to a per-scenario
/// [`Executor`](crate::Executor): every outcome of every piece is judged
/// against the same pair — the shape of the paper's two-agent sweeps,
/// where one algorithm (hence one `E`, one bound pair) covers the whole
/// grid.
pub struct Bounded<'a> {
    executor: &'a dyn crate::Executor,
    bounds: Option<Bounds>,
}

impl<'a> Bounded<'a> {
    /// Wraps `executor`, judging every outcome against `bounds`.
    #[must_use]
    pub fn new(executor: &'a dyn crate::Executor, bounds: Option<Bounds>) -> Self {
        Bounded { executor, bounds }
    }
}

impl PieceExecutor for Bounded<'_> {
    fn run_piece(
        &self,
        runner: &Runner,
        piece: &WorkPiece<'_>,
    ) -> Result<(Vec<ScenarioOutcome>, Option<Bounds>), RunnerError> {
        runner
            .outcomes(self.executor, &piece.scenarios)
            .map(|o| (o, self.bounds))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Index-space-only stand-in: `lease_ranges` touches nothing but
    /// `size()`.
    struct Sized(usize);

    impl Workload for Sized {
        fn size(&self) -> usize {
            self.0
        }
        fn meta(&self) -> WorkloadMeta {
            WorkloadMeta {
                kind: WorkloadKind::Grid,
                digest: 0,
                full_size: self.0,
                size: self.0,
            }
        }
        fn pieces(&self, _lo: usize, _hi: usize) -> Vec<WorkPiece<'_>> {
            unreachable!("lease_ranges never enumerates pieces")
        }
    }

    #[test]
    fn lease_ranges_tile_the_index_space_in_order() {
        assert_eq!(
            Sized(10).lease_ranges(3),
            vec![(0, 3), (3, 6), (6, 9), (9, 10)]
        );
        assert_eq!(Sized(9).lease_ranges(3), vec![(0, 3), (3, 6), (6, 9)]);
        assert_eq!(Sized(4).lease_ranges(100), vec![(0, 4)]);
        assert_eq!(Sized(0).lease_ranges(5), Vec::<(usize, usize)>::new());
        // Contiguity and coverage, the property `SweepReport::merge`
        // relies on.
        let ranges = Sized(173).lease_ranges(7);
        assert_eq!(ranges[0].0, 0);
        assert_eq!(ranges.last().unwrap().1, 173);
        for pair in ranges.windows(2) {
            assert_eq!(pair[0].1, pair[1].0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn zero_sized_lease_chunks_are_refused() {
        let _ = Sized(10).lease_ranges(0);
    }

    #[test]
    fn fingerprint_spells_kind_digest_and_sizes() {
        let meta = WorkloadMeta {
            kind: WorkloadKind::Topo,
            digest: 0xabc,
            full_size: 48,
            size: 17,
        };
        assert_eq!(meta.fingerprint(), "topo-0000000000000abc-f48-s17");
    }

    #[test]
    fn fnv1a_matches_the_published_reference_vectors() {
        // The digest must be pinned by the algorithm, not by the stdlib:
        // these are the standard FNV-1a 64 test vectors.
        let empty = Fnv1a::new();
        assert_eq!(empty.finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv1a::new();
        h.write_bytes(b"foobar");
        assert_eq!(h.finish(), 0x8594_4171_f739_67e8);
    }
}
