//! The unified parallel scenario-sweep engine of the rendezvous workspace.
//!
//! The paper's claims (Miller & Pelc, PODC 2014) are all *worst-case over
//! an adversary*: any label pair from `{1, …, L}`, any distinct start
//! nodes, any wake-up delays. Reproducing a claim therefore means sweeping
//! an adversarial configuration space and folding every execution into
//! aggregate statistics. Before this crate, each experiment hand-rolled
//! that sweep; now there is exactly one engine:
//!
//! * [`Scenario`] — one fully-specified `k ≥ 2`-agent execution: a list
//!   of [`Placement`]s (label, start, wake-up delay) plus the round
//!   budget. [`Scenario::pair`] builds the paper's two-agent case; fleet
//!   scenarios drive the gathering generalization (§1.4);
//! * [`Grid`] — declarative enumeration of an adversarial sweep: label
//!   pairs × ordered start pairs × delays in pair mode, or fleet sizes ×
//!   start rotations × delay phases (expanded by a [`FleetRule`]) in
//!   fleet mode — either way with a deterministic sampling cap for
//!   spaces too large to exhaust;
//! * [`Runner`] — executes scenario batches, sequentially or across
//!   threads, and folds [`ScenarioOutcome`]s into [`SweepStats`]. The fold
//!   itself is always sequential in scenario order, so parallel and
//!   sequential runs produce **identical** aggregates by construction;
//! * [`SweepStats`] — max/mean time and cost, meeting failures, crossing
//!   totals, and bound-violation counts against a [`Bounds`] pair.
//!
//! The **graph itself** is a sweep axis too: a [`TopoGrid`] enumerates
//! (seeded [`GraphSpec`](rendezvous_graph::GraphSpec) × scenario) spaces
//! over many graphs — each graph built once and shared across its
//! scenarios — and folds into per-family [`TopoStats`], mergeable across
//! shards exactly like [`SweepStats`].
//!
//! Sweeps also scale **across processes**: [`Grid::shard`] partitions the
//! index-stable scenario list into balanced contiguous shards,
//! [`Runner::sweep_shard`] folds a shard's outcomes at their global
//! indices, the resulting [`SweepStats`] serialize over any byte channel
//! (serde), and [`SweepStats::merge`] is the associative fold that
//! reassembles the exact single-process aggregates — worst-case witnesses
//! and their lowest-index tie-breaks included.
//!
//! # Examples
//!
//! ```
//! use rendezvous_core::{Cheap, LabelSpace};
//! use rendezvous_explore::OrientedRingExplorer;
//! use rendezvous_graph::generators;
//! use rendezvous_runner::{AlgorithmExecutor, Grid, Runner};
//! use std::sync::Arc;
//!
//! let g = Arc::new(generators::oriented_ring(6).unwrap());
//! let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
//! let alg = Cheap::new(g.clone(), ex, LabelSpace::new(4).unwrap());
//! let grid = Grid::new(4 * rendezvous_core::RendezvousAlgorithm::time_bound(&alg))
//!     .label_pairs_both_orders(&[(1, 4)])
//!     .delays(&[0, 5])
//!     .all_start_pairs(&g);
//! let stats = Runner::sequential()
//!     .sweep(&AlgorithmExecutor::new(&alg), &grid.scenarios())
//!     .unwrap();
//! assert_eq!(stats.failures, 0);
//! assert!(stats.max_time > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod executor;
mod grid;
mod runner;
mod scenario;
mod stats;
mod topo;

pub use executor::{AlgorithmExecutor, Executor, FactoryExecutor, GatheringExecutor, RunnerError};
pub use grid::{FleetRule, Grid, ScenarioShard};
pub use runner::Runner;
pub use scenario::{Placement, Scenario, ScenarioOutcome};
pub use stats::{fold_outcomes, Bounds, RatioEntry, SweepStats, WorstEntry};
pub use topo::{FamilyStats, TopoEntry, TopoExecutor, TopoGrid, TopoPiece, TopoStats, TopoWitness};
