//! The unified parallel scenario-sweep engine of the rendezvous workspace.
//!
//! The paper's claims (Miller & Pelc, PODC 2014) are all *worst-case over
//! an adversary*: any label pair from `{1, …, L}`, any distinct start
//! nodes, any wake-up delays — and, in this workspace's generalizations,
//! any fleet of `k ≥ 2` agents on any of hundreds of seeded topologies.
//! Reproducing a claim therefore means sweeping an adversarial
//! configuration space and folding every execution into aggregate
//! statistics. That shape is defined exactly **once**, as a generic
//! pipeline over the [`Workload`] trait:
//!
//! ```text
//! enumerate (Workload) → run (PieceExecutor) → fold (SweepReport)
//!     → shard (Workload::shard) → merge (SweepReport::merge)
//! ```
//!
//! * [`Scenario`] — one fully-specified `k ≥ 2`-agent execution: a list
//!   of [`Placement`]s (label, start, wake-up delay) plus the round
//!   budget. [`Scenario::pair`] builds the paper's two-agent case;
//! * [`Workload`] — an index-stable, capped, shardable source of
//!   `(global index, context, Scenario)` units. Implemented by [`Grid`]
//!   (label pairs × start pairs × delays in pair mode, fleet sizes ×
//!   rotations × delay phases in fleet mode — one graph, one fold group)
//!   and [`TopoGrid`] (per-[`GraphSpec`](rendezvous_graph::GraphSpec)
//!   grids concatenated over many graphs, each built once and keyed by
//!   family);
//! * [`Runner`] — executes workloads, sequentially or across threads,
//!   through a [`PieceExecutor`] (any per-scenario [`Executor`] works
//!   as-is; [`Bounded`] attaches sweep-level [`Bounds`]); the fold itself
//!   always walks outcomes in global index order, so parallel and
//!   sequential runs produce **identical** reports by construction;
//! * [`SweepReport`] — the one keyed fold: per-group (`""` for plain
//!   sweeps, the graph family for topology sweeps) sums, maxima,
//!   bound-violation counts and worst-case [`Witness`]es, tie-broken
//!   toward the lowest global index with exact-`u128` ratio comparison.
//!
//! Sweeps also scale **across processes**: [`Workload::shard`] cuts the
//! index space into balanced contiguous shards, [`Runner::sweep_shard`]
//! folds a shard's outcomes at their global indices, the resulting
//! [`SweepReport`] serializes over any byte channel (serde), and
//! [`SweepReport::merge`] is the associative fold that reassembles the
//! exact single-process aggregates — worst-case witnesses and their
//! lowest-index tie-breaks included.
//!
//! # Examples
//!
//! ```
//! use rendezvous_core::{Cheap, LabelSpace};
//! use rendezvous_explore::OrientedRingExplorer;
//! use rendezvous_graph::generators;
//! use rendezvous_runner::{AlgorithmExecutor, Grid, Runner};
//! use std::sync::Arc;
//!
//! let g = Arc::new(generators::oriented_ring(6).unwrap());
//! let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
//! let alg = Cheap::new(g.clone(), ex, LabelSpace::new(4).unwrap());
//! let grid = Grid::new(4 * rendezvous_core::RendezvousAlgorithm::time_bound(&alg))
//!     .label_pairs_both_orders(&[(1, 4)])
//!     .delays(&[0, 5])
//!     .all_start_pairs(&g);
//! let stats = Runner::sequential()
//!     .sweep(&grid, &AlgorithmExecutor::new(&alg))
//!     .unwrap()
//!     .solo();
//! assert_eq!(stats.failures, 0);
//! assert!(stats.max_time > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod executor;
mod grid;
mod report;
mod runner;
mod scenario;
mod topo;
mod workload;

pub use batch::BatchExecutor;
pub use executor::{AlgorithmExecutor, Executor, FactoryExecutor, GatheringExecutor, RunnerError};
pub use grid::{FleetRule, Grid};
pub use report::{fold_outcomes, Bounds, GroupStats, SweepReport, Witness};
pub use runner::Runner;
pub use scenario::{Placement, Scenario, ScenarioOutcome};
pub use topo::{TopoEntry, TopoGrid};
pub use workload::{
    Bounded, Fnv1a, PieceExecutor, WorkPiece, Workload, WorkloadKind, WorkloadMeta,
};
