//! Topology sweeps: the graph itself as an enumerable adversary axis.
//!
//! A scenario [`Grid`](crate::Grid) sweeps labels × starts × delays on
//! **one** graph. A [`TopoGrid`] lifts that one level: it takes a list of
//! [`GraphSpec`]s (seeded, serializable graph recipes), builds each graph
//! **once** (an `Arc` shared by all of that spec's scenarios — the
//! topology-level analogue of the executor's schedule cache), instantiates
//! a scenario grid per spec, and exposes the concatenation as one
//! index-stable [`Workload`]:
//!
//! ```text
//! global index = entry offset + local (capped) scenario index
//! ```
//!
//! Because the per-spec grids apply their sampling caps *before*
//! concatenation, the global list is reproducible, and the default
//! [`Workload::shard`] rule cuts it into balanced contiguous shards
//! exactly like a plain grid's — merging per-shard
//! [`SweepReport`](crate::SweepReport)s reproduces the single-process
//! sweep byte for byte, witnesses included.
//!
//! The fold key of every unit is its spec's **graph family** (ring, tree,
//! erdős–rényi, …), so a topology sweep's report groups per family:
//! worst time, worst cost, and worst time/bound ratio, each with its
//! lowest-global-index witness carrying the replayable [`GraphSpec`].

use crate::workload::{WorkPiece, Workload, WorkloadKind, WorkloadMeta};
use crate::{Grid, RunnerError};
use rendezvous_graph::{GraphSpec, PortLabeledGraph};
use std::sync::Arc;

/// One spec's slot in a [`TopoGrid`]: the spec, its graph (built once,
/// shared across all of the spec's scenarios), its scenario grid, and the
/// global index of its first scenario.
#[derive(Debug, Clone)]
pub struct TopoEntry {
    /// Position of this entry in the spec list.
    pub spec_index: usize,
    /// The recipe that built [`TopoEntry::graph`].
    pub spec: GraphSpec,
    /// The spec's graph family ([`GraphSpec::family`], resolved once) —
    /// the fold key of every scenario in this entry.
    pub family: String,
    /// The built graph — one allocation per spec, not per scenario.
    pub graph: Arc<PortLabeledGraph>,
    /// The spec's scenario grid (cap already applied by the configurer).
    pub grid: Grid,
    /// Global index of the entry's first scenario.
    pub offset: usize,
}

/// An enumerable (spec × scenario) sweep space over many graphs.
#[derive(Debug, Clone)]
pub struct TopoGrid {
    entries: Vec<TopoEntry>,
    total: usize,
}

impl TopoGrid {
    /// Builds every spec's graph (once) and scenario grid, assigning
    /// stable global offsets in spec order.
    ///
    /// `configure` turns each (spec, built graph) into that spec's
    /// scenario grid — horizon, label pairs, delays and `sample_cap` are
    /// its choices, typically derived from the spec's exploration bound.
    ///
    /// # Errors
    ///
    /// [`RunnerError`] if any spec fails to build; the error names the
    /// spec so a bad entry in a long sweep list is findable.
    pub fn build(
        specs: Vec<GraphSpec>,
        mut configure: impl FnMut(&GraphSpec, &Arc<PortLabeledGraph>) -> Grid,
    ) -> Result<TopoGrid, RunnerError> {
        let mut entries = Vec::with_capacity(specs.len());
        let mut offset = 0usize;
        for (spec_index, spec) in specs.into_iter().enumerate() {
            let graph = Arc::new(
                spec.build()
                    .map_err(|e| RunnerError::new(format!("building {spec:?}: {e}")))?,
            );
            let grid = configure(&spec, &graph);
            let size = grid.size();
            entries.push(TopoEntry {
                spec_index,
                family: spec.family(),
                spec,
                graph,
                grid,
                offset,
            });
            offset += size;
        }
        Ok(TopoGrid {
            entries,
            total: offset,
        })
    }

    /// Total scenarios across all specs (caps applied).
    #[must_use]
    pub fn size(&self) -> usize {
        self.total
    }

    /// The entries, in spec order.
    #[must_use]
    pub fn entries(&self) -> &[TopoEntry] {
        &self.entries
    }
}

/// A [`TopoGrid`] as a [`Workload`]: the concatenated per-spec grids,
/// cut at entry boundaries into one piece per spec a range touches, each
/// piece keyed by the spec's graph family and carrying its [`TopoEntry`]
/// (the built graph) as context. Shard boundaries may fall *inside* a
/// spec's scenario list, so shards stay balanced even when specs have
/// wildly different grid sizes.
impl Workload for TopoGrid {
    fn size(&self) -> usize {
        TopoGrid::size(self)
    }

    fn meta(&self) -> WorkloadMeta {
        // The digest folds each entry's spec identity (the derived Debug
        // form shows every field, seeds included) plus its grid's own
        // content digest — two spec lists that happen to enumerate the
        // same number of scenarios still hash apart.
        let mut h = crate::workload::Fnv1a::new();
        h.write_usize(self.entries.len());
        for entry in &self.entries {
            h.write_bytes(format!("{:?}", entry.spec).as_bytes());
            h.write_u64(entry.grid.digest());
        }
        WorkloadMeta {
            kind: WorkloadKind::Topo,
            digest: h.finish(),
            full_size: self
                .entries
                .iter()
                .fold(0usize, |acc, e| acc.saturating_add(e.grid.full_size())),
            size: self.total,
        }
    }

    fn pieces(&self, lo: usize, hi: usize) -> Vec<WorkPiece<'_>> {
        assert!(
            lo <= hi && hi <= self.total,
            "global range {lo}..{hi} out of bounds for a topo grid of {}",
            self.total
        );
        let mut out = Vec::new();
        for entry in &self.entries {
            let size = entry.grid.size();
            let (begin, end) = (entry.offset, entry.offset + size);
            let cut_lo = lo.max(begin);
            let cut_hi = hi.min(end);
            if cut_lo < cut_hi {
                out.push(WorkPiece {
                    offset: cut_lo,
                    key: &entry.family,
                    entry: Some(entry),
                    scenarios: entry.grid.scenarios_in(cut_lo - begin, cut_hi - begin),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rendezvous_graph::{RingSpec, SeededSpec};

    #[test]
    fn topo_grid_concatenates_spec_grids_index_stably() {
        let specs = vec![
            GraphSpec::Ring(RingSpec { n: 4 }),
            GraphSpec::Ring(RingSpec { n: 5 }),
            GraphSpec::ScrambledRing(SeededSpec { n: 4, seed: 1 }),
        ];
        let topo = TopoGrid::build(specs, |_, g| {
            Grid::new(20)
                .label_pairs_ordered(&[(1, 2)])
                .all_start_pairs(g)
        })
        .unwrap();
        // 4·3 + 5·4 + 4·3 ordered start pairs.
        assert_eq!(topo.size(), 12 + 20 + 12);
        assert_eq!(topo.entries()[0].offset, 0);
        assert_eq!(topo.entries()[1].offset, 12);
        assert_eq!(topo.entries()[2].offset, 32);
        // The graph is built once per spec and shared, and the family is
        // resolved once at build time.
        assert_eq!(topo.entries()[1].graph.node_count(), 5);
        assert_eq!(topo.entries()[2].family, "scrambled-ring");

        // Pieces partition any range, respecting entry boundaries.
        let pieces = topo.pieces(0, topo.size());
        let shape: Vec<(usize, usize)> = pieces
            .iter()
            .map(|p| (p.offset, p.scenarios.len()))
            .collect();
        assert_eq!(shape, vec![(0, 12), (12, 20), (32, 12)]);
        let middle = topo.pieces(10, 34);
        let shape: Vec<(usize, usize)> = middle
            .iter()
            .map(|p| (p.offset, p.scenarios.len()))
            .collect();
        assert_eq!(shape, vec![(10, 2), (12, 20), (32, 2)]);
        // Every piece carries its entry and is keyed by the family.
        for p in &middle {
            let entry = p.entry.expect("topology pieces carry their entry");
            assert_eq!(p.key, entry.family);
            assert_eq!(
                p.scenarios,
                entry.grid.scenarios_in(
                    p.offset - entry.offset,
                    p.offset - entry.offset + p.scenarios.len()
                )
            );
        }
        assert!(topo.pieces(12, 12).is_empty());
    }

    #[test]
    fn topo_shards_partition_the_global_space() {
        let specs: Vec<GraphSpec> = (4..9).map(|n| GraphSpec::Ring(RingSpec { n })).collect();
        let topo = TopoGrid::build(specs, |_, g| {
            Grid::new(20)
                .label_pairs_ordered(&[(1, 2)])
                .all_start_pairs(g)
                .sample_cap(7)
        })
        .unwrap();
        assert_eq!(topo.size(), 35);
        for of in [1usize, 2, 3, 5, 35, 50] {
            let mut next = 0;
            for i in 0..of {
                let (lo, hi) = topo.shard(i, of);
                assert_eq!(lo, next, "shard {i}/{of} must start where the last ended");
                assert!(hi >= lo);
                next = hi;
            }
            assert_eq!(next, topo.size(), "shards must cover the space ({of})");
        }
        // The meta fingerprints the pre-cap space: 5 rings with 12..56
        // ordered start pairs (4·3, 5·4, 6·5, 7·6, 8·7).
        let meta = topo.meta();
        assert_eq!(meta.kind, WorkloadKind::Topo);
        assert_eq!(meta.size, 35);
        assert_eq!(meta.full_size, 12 + 20 + 30 + 42 + 56);
    }

    #[test]
    fn build_reports_the_failing_spec() {
        let err = TopoGrid::build(vec![GraphSpec::Ring(RingSpec { n: 2 })], |_, g| {
            Grid::new(10).all_start_pairs(g)
        })
        .unwrap_err();
        assert!(err.to_string().contains("Ring"), "unhelpful error: {err}");
    }
}
