//! Topology sweeps: the graph itself as an enumerable adversary axis.
//!
//! A scenario [`Grid`](crate::Grid) sweeps labels × starts × delays on
//! **one** graph. A [`TopoGrid`] lifts that one level: it takes a list of
//! [`GraphSpec`]s (seeded, serializable graph recipes), builds each graph
//! **once** (an `Arc` shared by all of that spec's scenarios — the
//! topology-level analogue of the executor's schedule cache), instantiates
//! a scenario grid per spec, and exposes the concatenation as one
//! index-stable scenario space:
//!
//! ```text
//! global index = entry offset + local (capped) scenario index
//! ```
//!
//! Because the per-spec grids apply their sampling caps *before*
//! concatenation, the global list is reproducible, and
//! [`TopoGrid::shard`] can cut it into balanced contiguous shards exactly
//! like [`Grid::shard`] — merging per-shard [`TopoStats`] reproduces the
//! single-process sweep byte for byte, witnesses included.
//!
//! [`TopoStats`] aggregates **per graph family** (ring, tree,
//! erdős–rényi, …): worst time, worst cost, and worst time/bound ratio,
//! each with its lowest-`(spec, scenario)`-index witness. The ratio is
//! compared by exact `u128` cross-multiplication, never floats, so merge
//! order can't perturb it.

use crate::grid::strided;
use crate::{Bounds, Grid, Runner, RunnerError, Scenario, ScenarioOutcome};
use rendezvous_graph::{GraphSpec, PortLabeledGraph};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One spec's slot in a [`TopoGrid`]: the spec, its graph (built once,
/// shared across all of the spec's scenarios), its scenario grid, and the
/// global index of its first scenario.
#[derive(Debug, Clone)]
pub struct TopoEntry {
    /// Position of this entry in the spec list.
    pub spec_index: usize,
    /// The recipe that built [`TopoEntry::graph`].
    pub spec: GraphSpec,
    /// The built graph — one allocation per spec, not per scenario.
    pub graph: Arc<PortLabeledGraph>,
    /// The spec's scenario grid (cap already applied by the configurer).
    pub grid: Grid,
    /// Global index of the entry's first scenario.
    pub offset: usize,
}

/// An enumerable (spec × scenario) sweep space over many graphs.
#[derive(Debug, Clone)]
pub struct TopoGrid {
    entries: Vec<TopoEntry>,
    total: usize,
}

/// A contiguous run of one entry's scenarios, produced by cutting the
/// global index space: which entry, and which half-open local range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopoPiece {
    /// Index into [`TopoGrid::entries`].
    pub entry: usize,
    /// First local (capped) scenario index of the run.
    pub lo: usize,
    /// One past the last local scenario index.
    pub hi: usize,
}

impl TopoGrid {
    /// Builds every spec's graph (once) and scenario grid, assigning
    /// stable global offsets in spec order.
    ///
    /// `configure` turns each (spec, built graph) into that spec's
    /// scenario grid — horizon, label pairs, delays and `sample_cap` are
    /// its choices, typically derived from the spec's exploration bound.
    ///
    /// # Errors
    ///
    /// [`RunnerError`] if any spec fails to build; the error names the
    /// spec so a bad entry in a long sweep list is findable.
    pub fn build(
        specs: Vec<GraphSpec>,
        mut configure: impl FnMut(&GraphSpec, &Arc<PortLabeledGraph>) -> Grid,
    ) -> Result<TopoGrid, RunnerError> {
        let mut entries = Vec::with_capacity(specs.len());
        let mut offset = 0usize;
        for (spec_index, spec) in specs.into_iter().enumerate() {
            let graph = Arc::new(
                spec.build()
                    .map_err(|e| RunnerError::new(format!("building {spec:?}: {e}")))?,
            );
            let grid = configure(&spec, &graph);
            let size = grid.size();
            entries.push(TopoEntry {
                spec_index,
                spec,
                graph,
                grid,
                offset,
            });
            offset += size;
        }
        Ok(TopoGrid {
            entries,
            total: offset,
        })
    }

    /// Total scenarios across all specs (caps applied).
    #[must_use]
    pub fn size(&self) -> usize {
        self.total
    }

    /// The entries, in spec order.
    #[must_use]
    pub fn entries(&self) -> &[TopoEntry] {
        &self.entries
    }

    /// Cuts the global index range `[lo, hi)` into per-entry pieces, in
    /// global order. Entries the range skips entirely yield no piece.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or `hi > self.size()`.
    #[must_use]
    pub fn pieces(&self, lo: usize, hi: usize) -> Vec<TopoPiece> {
        assert!(
            lo <= hi && hi <= self.total,
            "global range {lo}..{hi} out of bounds for a topo grid of {}",
            self.total
        );
        let mut out = Vec::new();
        for (i, entry) in self.entries.iter().enumerate() {
            let size = entry.grid.size();
            let (begin, end) = (entry.offset, entry.offset + size);
            let cut_lo = lo.max(begin);
            let cut_hi = hi.min(end);
            if cut_lo < cut_hi {
                out.push(TopoPiece {
                    entry: i,
                    lo: cut_lo - begin,
                    hi: cut_hi - begin,
                });
            }
        }
        out
    }

    /// The global index range of shard `shard` of `of`: the same balanced
    /// contiguous partition rule as [`Grid::shard`], applied to the
    /// concatenated (spec × scenario) space — so shard boundaries may fall
    /// *inside* a spec's scenario list, and shards stay balanced even when
    /// specs have wildly different grid sizes.
    ///
    /// # Panics
    ///
    /// Panics if `of == 0` or `shard >= of`.
    #[must_use]
    pub fn shard(&self, shard: usize, of: usize) -> (usize, usize) {
        assert!(of > 0, "cannot split a topo grid into zero shards");
        assert!(
            shard < of,
            "shard index {shard} out of range for {of} shards"
        );
        (
            strided(shard, self.total, of),
            strided(shard + 1, self.total, of),
        )
    }
}

/// Executes one entry's scenario batch — the seam between the generic
/// topology sweep and the algorithm under test. Implementations build
/// whatever per-graph machinery they need (explorer, algorithm, schedule
/// cache) inside [`TopoExecutor::run_entry`]. `Sync` because the sweep
/// parallelizes **across entries** (there are typically hundreds of
/// specs and only a handful of scenarios per spec, so per-entry batches
/// alone cannot saturate a machine).
pub trait TopoExecutor: Sync {
    /// Runs `scenarios` (a contiguous slice of `entry.grid`'s capped
    /// list) and returns the outcomes **in input order** together with
    /// the entry's paper bounds. `runner` is the executor to use for the
    /// batch itself (e.g. via [`Runner::outcomes`]); the sweep passes a
    /// sequential one when it is already parallel across entries.
    ///
    /// # Errors
    ///
    /// Any configuration or simulation error, which aborts the sweep.
    fn run_entry(
        &self,
        runner: &Runner,
        entry: &TopoEntry,
        scenarios: &[Scenario],
    ) -> Result<(Vec<ScenarioOutcome>, Bounds), RunnerError>;
}

impl Runner {
    /// Sweeps an entire [`TopoGrid`] into [`TopoStats`].
    ///
    /// # Errors
    ///
    /// The first [`RunnerError`] in global scenario order.
    pub fn sweep_topo(
        &self,
        topo: &TopoGrid,
        executor: &dyn TopoExecutor,
    ) -> Result<TopoStats, RunnerError> {
        self.sweep_topo_range(topo, 0, topo.size(), executor)
    }

    /// Sweeps shard `shard` of `of` of a [`TopoGrid`] (see
    /// [`TopoGrid::shard`]). Merging the per-shard [`TopoStats`] with
    /// [`TopoStats::merge`] reproduces [`Runner::sweep_topo`] exactly.
    ///
    /// # Errors
    ///
    /// See [`Runner::sweep_topo`].
    pub fn sweep_topo_shard(
        &self,
        topo: &TopoGrid,
        shard: usize,
        of: usize,
        executor: &dyn TopoExecutor,
    ) -> Result<TopoStats, RunnerError> {
        let (lo, hi) = topo.shard(shard, of);
        self.sweep_topo_range(topo, lo, hi, executor)
    }

    /// Sweeps the global index range `[lo, hi)` of a [`TopoGrid`],
    /// folding outcomes at their `(spec, scenario)` indices.
    ///
    /// Parallelism happens **across entries**: pieces execute on the
    /// worker threads (each running its scenario batch sequentially —
    /// nesting two parallel levels would only oversubscribe cores), and
    /// the fold walks the piece results in global order, so parallel and
    /// sequential runs produce identical stats and report identical
    /// first-error behavior.
    ///
    /// # Errors
    ///
    /// See [`Runner::sweep_topo`].
    pub fn sweep_topo_range(
        &self,
        topo: &TopoGrid,
        lo: usize,
        hi: usize,
        executor: &dyn TopoExecutor,
    ) -> Result<TopoStats, RunnerError> {
        let pieces = topo.pieces(lo, hi);
        let inner = if self.is_parallel() && pieces.len() > 1 {
            Runner::sequential()
        } else {
            *self
        };
        let results = self.map(pieces, |_, piece| {
            let entry = &topo.entries()[piece.entry];
            let scenarios = entry.grid.scenarios_in(piece.lo, piece.hi);
            executor
                .run_entry(&inner, entry, &scenarios)
                .map(|(outcomes, bounds)| (piece, outcomes, bounds))
        });
        let mut stats = TopoStats::default();
        for result in results {
            let (piece, outcomes, bounds) = result?;
            let entry = &topo.entries()[piece.entry];
            debug_assert_eq!(outcomes.len(), piece.hi - piece.lo);
            let family = entry.spec.family();
            for (k, outcome) in outcomes.iter().enumerate() {
                stats.absorb(&family, entry, piece.lo + k, outcome, bounds);
            }
        }
        Ok(stats)
    }
}

/// A topology-sweep witness: which `(spec, scenario)` achieved an extreme
/// value, with everything needed to replay it (the spec is a buildable
/// recipe, the scenario a full configuration).
///
/// Ties break toward the lexicographically smallest
/// `(spec_index, scenario_index)` — equivalently the smallest global
/// index, since entries are laid out in spec order — making witnesses
/// independent of execution order and of sharding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopoWitness {
    /// Position of the spec in the swept spec list.
    pub spec_index: usize,
    /// Local (capped) index of the scenario within the spec's grid.
    pub scenario_index: usize,
    /// The graph recipe.
    pub spec: GraphSpec,
    /// The adversarial configuration.
    pub scenario: Scenario,
    /// Measured time.
    pub time: u64,
    /// Measured cost.
    pub cost: u64,
    /// The paper's time bound for this spec's graph (the `E`-dependent
    /// denominator of the bound ratio).
    pub time_bound: u64,
    /// The paper's cost bound for this spec's graph.
    pub cost_bound: u64,
}

impl TopoWitness {
    /// `(spec_index, scenario_index)` — the tie-break key.
    fn key(&self) -> (usize, usize) {
        (self.spec_index, self.scenario_index)
    }
}

/// Ratio comparison without floats: `a.time / a.time_bound` versus
/// `b.time / b.time_bound` through the shared exact cross-multiplication
/// helper of `stats.rs`, so the two witness rankings can never drift.
fn ratio_gt(a: &TopoWitness, b: &TopoWitness) -> bool {
    crate::stats::ratio_pair_gt((a.time, a.time_bound), (b.time, b.time_bound))
}

fn ratio_eq(a: &TopoWitness, b: &TopoWitness) -> bool {
    crate::stats::ratio_pair_eq((a.time, a.time_bound), (b.time, b.time_bound))
}

/// Per-family aggregates of a topology sweep.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FamilyStats {
    /// Family name ([`GraphSpec::family`]).
    pub family: String,
    /// Scenarios executed.
    pub executed: usize,
    /// Scenarios in which the agents met within the horizon.
    pub meetings: usize,
    /// Scenarios in which they did not (must be 0 for the paper's
    /// algorithms under a sufficient horizon).
    pub failures: usize,
    /// Maximum time over meeting scenarios.
    pub max_time: u64,
    /// Maximum cost over meeting scenarios.
    pub max_cost: u64,
    /// Total cluster-merge events across the family's scenarios
    /// (gathering sweeps; 0 for pair sweeps).
    pub merges: u64,
    /// Meeting scenarios whose time exceeded their spec's time bound —
    /// or, when the outcome carried its own per-scenario
    /// [`time_bound`](crate::ScenarioOutcome::time_bound) (gathering's
    /// merge-and-restart bound), that bound.
    pub time_violations: usize,
    /// Meeting scenarios whose cost exceeded their spec's cost bound.
    pub cost_violations: usize,
    /// Witness of `max_time`.
    pub worst_time: Option<TopoWitness>,
    /// Witness of `max_cost`.
    pub worst_cost: Option<TopoWitness>,
    /// Witness of the largest time / time-bound ratio — the scenario that
    /// came closest to (or past) the paper's guarantee. Distinct from
    /// `worst_time` because the bound's `E` varies per spec.
    pub worst_ratio: Option<TopoWitness>,
}

impl FamilyStats {
    fn new(family: &str) -> FamilyStats {
        FamilyStats {
            family: family.to_string(),
            executed: 0,
            meetings: 0,
            failures: 0,
            max_time: 0,
            max_cost: 0,
            merges: 0,
            time_violations: 0,
            cost_violations: 0,
            worst_time: None,
            worst_cost: None,
            worst_ratio: None,
        }
    }

    fn absorb(
        &mut self,
        entry: &TopoEntry,
        scenario_index: usize,
        outcome: &ScenarioOutcome,
        bounds: Bounds,
    ) {
        self.executed += 1;
        self.merges += outcome.merges;
        let Some(time) = outcome.time else {
            self.failures += 1;
            return;
        };
        self.meetings += 1;
        self.max_time = self.max_time.max(time);
        self.max_cost = self.max_cost.max(outcome.cost);
        // A per-scenario bound (gathering's merge-and-restart bound, which
        // varies with the fleet) overrides the entry-level time bound for
        // both the violation check and the ratio witness.
        let time_bound = outcome.time_bound.unwrap_or(bounds.time);
        if time > time_bound {
            self.time_violations += 1;
        }
        if outcome.cost > bounds.cost {
            self.cost_violations += 1;
        }
        let witness = TopoWitness {
            spec_index: entry.spec_index,
            scenario_index,
            spec: entry.spec.clone(),
            scenario: outcome.scenario.clone(),
            time,
            cost: outcome.cost,
            time_bound,
            cost_bound: bounds.cost,
        };
        replace_if(
            &mut self.worst_time,
            &witness,
            |a, b| a.time > b.time,
            |a, b| a.time == b.time,
        );
        replace_if(
            &mut self.worst_cost,
            &witness,
            |a, b| a.cost > b.cost,
            |a, b| a.cost == b.cost,
        );
        replace_if(&mut self.worst_ratio, &witness, ratio_gt, ratio_eq);
    }

    fn merge(&self, other: &FamilyStats) -> FamilyStats {
        assert_eq!(self.family, other.family, "merging different families");
        FamilyStats {
            family: self.family.clone(),
            executed: self.executed + other.executed,
            meetings: self.meetings + other.meetings,
            failures: self.failures + other.failures,
            max_time: self.max_time.max(other.max_time),
            max_cost: self.max_cost.max(other.max_cost),
            merges: self.merges + other.merges,
            time_violations: self.time_violations + other.time_violations,
            cost_violations: self.cost_violations + other.cost_violations,
            worst_time: merge_witness(
                &self.worst_time,
                &other.worst_time,
                |a, b| a.time > b.time,
                |a, b| a.time == b.time,
            ),
            worst_cost: merge_witness(
                &self.worst_cost,
                &other.worst_cost,
                |a, b| a.cost > b.cost,
                |a, b| a.cost == b.cost,
            ),
            worst_ratio: merge_witness(&self.worst_ratio, &other.worst_ratio, ratio_gt, ratio_eq),
        }
    }
}

/// Installs `candidate` into `slot` if it beats the incumbent (or ties at
/// a smaller `(spec, scenario)` index).
fn replace_if(
    slot: &mut Option<TopoWitness>,
    candidate: &TopoWitness,
    gt: impl Fn(&TopoWitness, &TopoWitness) -> bool,
    eq: impl Fn(&TopoWitness, &TopoWitness) -> bool,
) {
    let wins = match slot {
        None => true,
        Some(w) => gt(candidate, w) || (eq(candidate, w) && candidate.key() < w.key()),
    };
    if wins {
        *slot = Some(candidate.clone());
    }
}

/// Lowest-index-on-ties winner between two optional witnesses.
fn merge_witness(
    a: &Option<TopoWitness>,
    b: &Option<TopoWitness>,
    gt: impl Fn(&TopoWitness, &TopoWitness) -> bool,
    eq: impl Fn(&TopoWitness, &TopoWitness) -> bool,
) -> Option<TopoWitness> {
    match (a, b) {
        (Some(x), Some(y)) => {
            if gt(x, y) || (eq(x, y) && x.key() <= y.key()) {
                Some(x.clone())
            } else {
                Some(y.clone())
            }
        }
        (x, y) => x.clone().or_else(|| y.clone()),
    }
}

/// Aggregate statistics of one topology sweep, grouped by graph family
/// and kept **sorted by family name** — so two stats computed from the
/// same outcomes are structurally equal, and their JSON is byte-equal.
///
/// Mergeable exactly like [`SweepStats`](crate::SweepStats): split a
/// [`TopoGrid`] into contiguous shards, sweep each in its own process,
/// serialize, [`TopoStats::merge`] — the result equals the unsharded
/// sweep field for field (property-tested in `tests/topo.rs` and checked
/// end-to-end in CI against the `experiments --topo` binary).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TopoStats {
    /// Per-family aggregates, sorted by family name.
    pub families: Vec<FamilyStats>,
}

impl TopoStats {
    /// Folds one `(spec, scenario)` outcome into its family's aggregate.
    pub fn absorb(
        &mut self,
        family: &str,
        entry: &TopoEntry,
        scenario_index: usize,
        outcome: &ScenarioOutcome,
        bounds: Bounds,
    ) {
        let slot = match self
            .families
            .binary_search_by(|f| f.family.as_str().cmp(family))
        {
            Ok(i) => i,
            Err(i) => {
                self.families.insert(i, FamilyStats::new(family));
                i
            }
        };
        self.families[slot].absorb(entry, scenario_index, outcome, bounds);
    }

    /// Combines the stats of two disjoint index ranges of one topology
    /// sweep — associative and commutative, since every field is a sum, a
    /// max, or an index-tie-broken witness.
    #[must_use]
    pub fn merge(&self, other: &TopoStats) -> TopoStats {
        let mut families = Vec::with_capacity(self.families.len().max(other.families.len()));
        let (mut i, mut j) = (0, 0);
        while i < self.families.len() && j < other.families.len() {
            let (a, b) = (&self.families[i], &other.families[j]);
            match a.family.cmp(&b.family) {
                std::cmp::Ordering::Less => {
                    families.push(a.clone());
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    families.push(b.clone());
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    families.push(a.merge(b));
                    i += 1;
                    j += 1;
                }
            }
        }
        families.extend_from_slice(&self.families[i..]);
        families.extend_from_slice(&other.families[j..]);
        TopoStats { families }
    }

    /// Total scenarios executed across all families.
    #[must_use]
    pub fn executed(&self) -> usize {
        self.families.iter().map(|f| f.executed).sum()
    }

    /// Total non-meeting scenarios across all families.
    #[must_use]
    pub fn failures(&self) -> usize {
        self.families.iter().map(|f| f.failures).sum()
    }

    /// Total bound violations (time + cost) across all families.
    #[must_use]
    pub fn violations(&self) -> usize {
        self.families
            .iter()
            .map(|f| f.time_violations + f.cost_violations)
            .sum()
    }

    /// `true` when every scenario met and stayed within its spec's bounds.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.failures() == 0 && self.violations() == 0
    }

    /// The per-family aggregate, if that family was swept.
    #[must_use]
    pub fn family(&self, name: &str) -> Option<&FamilyStats> {
        self.families
            .binary_search_by(|f| f.family.as_str().cmp(name))
            .ok()
            .map(|i| &self.families[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rendezvous_graph::{NodeId, RingSpec, SeededSpec};

    fn entry(spec_index: usize, spec: GraphSpec) -> TopoEntry {
        let graph = Arc::new(spec.build().unwrap());
        let grid = Grid::new(50)
            .label_pairs_ordered(&[(1, 2)])
            .all_start_pairs(&graph);
        TopoEntry {
            spec_index,
            spec,
            graph,
            grid,
            offset: 0,
        }
    }

    fn outcome(time: Option<u64>, cost: u64) -> ScenarioOutcome {
        ScenarioOutcome::pairwise(
            Scenario::pair(1, 2, NodeId::new(0), NodeId::new(1), 0, 50),
            time,
            cost,
            0,
        )
    }

    #[test]
    fn topo_grid_concatenates_spec_grids_index_stably() {
        let specs = vec![
            GraphSpec::Ring(RingSpec { n: 4 }),
            GraphSpec::Ring(RingSpec { n: 5 }),
            GraphSpec::ScrambledRing(SeededSpec { n: 4, seed: 1 }),
        ];
        let topo = TopoGrid::build(specs, |_, g| {
            Grid::new(20)
                .label_pairs_ordered(&[(1, 2)])
                .all_start_pairs(g)
        })
        .unwrap();
        // 4·3 + 5·4 + 4·3 ordered start pairs.
        assert_eq!(topo.size(), 12 + 20 + 12);
        assert_eq!(topo.entries()[0].offset, 0);
        assert_eq!(topo.entries()[1].offset, 12);
        assert_eq!(topo.entries()[2].offset, 32);
        // The graph is built once per spec and shared.
        assert_eq!(topo.entries()[1].graph.node_count(), 5);

        // Pieces partition any range, respecting entry boundaries.
        let pieces = topo.pieces(0, topo.size());
        assert_eq!(
            pieces,
            vec![
                TopoPiece {
                    entry: 0,
                    lo: 0,
                    hi: 12
                },
                TopoPiece {
                    entry: 1,
                    lo: 0,
                    hi: 20
                },
                TopoPiece {
                    entry: 2,
                    lo: 0,
                    hi: 12
                },
            ]
        );
        let middle = topo.pieces(10, 34);
        assert_eq!(
            middle,
            vec![
                TopoPiece {
                    entry: 0,
                    lo: 10,
                    hi: 12
                },
                TopoPiece {
                    entry: 1,
                    lo: 0,
                    hi: 20
                },
                TopoPiece {
                    entry: 2,
                    lo: 0,
                    hi: 2
                },
            ]
        );
        assert!(topo.pieces(12, 12).is_empty());
    }

    #[test]
    fn topo_shards_partition_the_global_space() {
        let specs: Vec<GraphSpec> = (4..9).map(|n| GraphSpec::Ring(RingSpec { n })).collect();
        let topo = TopoGrid::build(specs, |_, g| {
            Grid::new(20)
                .label_pairs_ordered(&[(1, 2)])
                .all_start_pairs(g)
                .sample_cap(7)
        })
        .unwrap();
        assert_eq!(topo.size(), 35);
        for of in [1usize, 2, 3, 5, 35, 50] {
            let mut next = 0;
            for i in 0..of {
                let (lo, hi) = topo.shard(i, of);
                assert_eq!(lo, next, "shard {i}/{of} must start where the last ended");
                assert!(hi >= lo);
                next = hi;
            }
            assert_eq!(next, topo.size(), "shards must cover the space ({of})");
        }
    }

    #[test]
    fn build_reports_the_failing_spec() {
        let err = TopoGrid::build(vec![GraphSpec::Ring(RingSpec { n: 2 })], |_, g| {
            Grid::new(10).all_start_pairs(g)
        })
        .unwrap_err();
        assert!(err.to_string().contains("Ring"), "unhelpful error: {err}");
    }

    #[test]
    fn family_stats_track_violations_and_ratio_witnesses() {
        let e = entry(3, GraphSpec::Ring(RingSpec { n: 4 }));
        let bounds = Bounds { time: 20, cost: 30 };
        let mut stats = TopoStats::default();
        stats.absorb("ring", &e, 0, &outcome(Some(10), 5), bounds);
        stats.absorb("ring", &e, 1, &outcome(Some(21), 40), bounds); // both violations
        stats.absorb("ring", &e, 2, &outcome(None, 0), bounds); // failure
        let f = stats.family("ring").unwrap();
        assert_eq!(
            (
                f.executed,
                f.meetings,
                f.failures,
                f.time_violations,
                f.cost_violations
            ),
            (3, 2, 1, 1, 1)
        );
        assert_eq!(f.max_time, 21);
        assert_eq!(f.worst_time.as_ref().unwrap().scenario_index, 1);
        assert_eq!(f.worst_ratio.as_ref().unwrap().time, 21);
        assert!(!stats.clean());
        assert_eq!(stats.executed(), 3);
        assert_eq!(stats.violations(), 2);
    }

    /// Gathering outcomes carry their own merge-and-restart bound; the
    /// family fold must judge violations and the ratio witness against
    /// it, not the entry-level bound, and must total the merge events.
    #[test]
    fn per_scenario_bounds_override_entry_bounds_in_family_stats() {
        let e = entry(0, GraphSpec::Ring(RingSpec { n: 4 }));
        let bounds = Bounds {
            time: 100,
            cost: 100,
        };
        let mut stats = TopoStats::default();
        let mut violating = outcome(Some(30), 5);
        violating.time_bound = Some(25); // beyond its own bound…
        violating.merges = 2;
        let mut clean = outcome(Some(10), 5);
        clean.time_bound = Some(40); // …this one within its own
        clean.merges = 1;
        stats.absorb("ring", &e, 0, &violating, bounds);
        stats.absorb("ring", &e, 1, &clean, bounds);
        let f = stats.family("ring").unwrap();
        assert_eq!(
            f.time_violations, 1,
            "30 > 25 violates even though 30 < 100"
        );
        assert_eq!(f.merges, 3);
        let w = f.worst_ratio.as_ref().unwrap();
        assert_eq!((w.time, w.time_bound), (30, 25), "ratio 30/25 > 10/40");
        assert!(!stats.clean());
    }

    #[test]
    fn ratio_comparison_is_exact_cross_multiplication() {
        // 7/21 == 9/27 — floats would round; cross-mult ties exactly, and
        // the lower (spec, scenario) index must win.
        let e_a = entry(1, GraphSpec::Ring(RingSpec { n: 4 }));
        let e_b = entry(0, GraphSpec::Ring(RingSpec { n: 5 }));
        let mut a = TopoStats::default();
        a.absorb(
            "ring",
            &e_a,
            0,
            &outcome(Some(7), 1),
            Bounds { time: 21, cost: 99 },
        );
        let mut b = TopoStats::default();
        b.absorb(
            "ring",
            &e_b,
            5,
            &outcome(Some(9), 1),
            Bounds { time: 27, cost: 99 },
        );
        for merged in [a.merge(&b), b.merge(&a)] {
            let w = merged.family("ring").unwrap().worst_ratio.clone().unwrap();
            assert_eq!((w.spec_index, w.scenario_index), (0, 5));
        }
        // And a genuinely larger ratio beats a smaller index.
        let mut c = TopoStats::default();
        c.absorb(
            "ring",
            &e_a,
            0,
            &outcome(Some(8), 1),
            Bounds { time: 21, cost: 99 },
        );
        let w = c
            .merge(&b)
            .family("ring")
            .unwrap()
            .worst_ratio
            .clone()
            .unwrap();
        assert_eq!(w.time, 8, "8/21 > 9/27");
    }

    #[test]
    fn merge_is_associative_commutative_and_sorted() {
        let e0 = entry(0, GraphSpec::Ring(RingSpec { n: 4 }));
        let e1 = entry(1, GraphSpec::ScrambledRing(SeededSpec { n: 4, seed: 2 }));
        let bounds = Bounds { time: 50, cost: 50 };
        let mut whole = TopoStats::default();
        let mut parts = [
            TopoStats::default(),
            TopoStats::default(),
            TopoStats::default(),
        ];
        let samples = [
            ("ring", &e0, 0, outcome(Some(4), 2)),
            ("scrambled-ring", &e1, 0, outcome(Some(9), 9)),
            ("ring", &e0, 1, outcome(Some(4), 1)),
            ("scrambled-ring", &e1, 1, outcome(None, 0)),
            ("ring", &e0, 2, outcome(Some(2), 8)),
        ];
        for (k, (family, e, idx, o)) in samples.iter().enumerate() {
            whole.absorb(family, e, *idx, o, bounds);
            parts[k % 3].absorb(family, e, *idx, o, bounds);
        }
        let ab_c = parts[0].merge(&parts[1]).merge(&parts[2]);
        let a_bc = parts[0].merge(&parts[1].merge(&parts[2]));
        let cba = parts[2].merge(&parts[1]).merge(&parts[0]);
        assert_eq!(ab_c, whole);
        assert_eq!(a_bc, whole);
        assert_eq!(cba, whole);
        // Families stay sorted, so JSON is byte-stable.
        let names: Vec<&str> = whole.families.iter().map(|f| f.family.as_str()).collect();
        assert_eq!(names, ["ring", "scrambled-ring"]);
        assert_eq!(whole.merge(&TopoStats::default()), whole);
    }

    #[test]
    fn topo_stats_serde_round_trip() {
        let e = entry(
            2,
            GraphSpec::permuted(GraphSpec::Ring(RingSpec { n: 5 }), 9),
        );
        let mut stats = TopoStats::default();
        stats.absorb(
            "permuted-ring",
            &e,
            4,
            &outcome(Some(12), 7),
            Bounds { time: 40, cost: 60 },
        );
        let text = serde_json::to_string(&stats).unwrap();
        let back: TopoStats = serde_json::from_str(&text).unwrap();
        assert_eq!(back, stats);
        // The witness's spec survives as a buildable recipe.
        let w = back
            .family("permuted-ring")
            .unwrap()
            .worst_time
            .clone()
            .unwrap();
        assert_eq!(w.spec.build().unwrap().node_count(), 5);
    }
}
