//! Topology-sweep determinism: merging the shard sweeps of a [`TopoGrid`]
//! workload must reproduce the unsharded sweep **byte for byte** —
//! per-family groups, witnesses and their global indices included — for
//! every shard count, surviving a JSON round trip (the shard→merge path
//! crosses a process boundary as text).

use proptest::prelude::*;
use rendezvous_core::{Cheap, Fast, LabelSpace, RendezvousAlgorithm};
use rendezvous_explore::spec_explorer;
use rendezvous_graph::{GraphSpec, RingSpec, SeededSpec, TorusSpec};
use rendezvous_runner::{
    AlgorithmExecutor, Bounds, Grid, PieceExecutor, Runner, RunnerError, ScenarioOutcome,
    SweepReport, TopoGrid, WorkPiece, Workload,
};

/// Per-piece executor used by the real `x10_topologies` experiment shape:
/// resolve the spec's explorer, build the algorithm on the piece's cached
/// graph, sweep through the shared engine.
struct AlgoTopo {
    l: u64,
    fast: bool,
}

impl PieceExecutor for AlgoTopo {
    fn run_piece(
        &self,
        runner: &Runner,
        piece: &WorkPiece<'_>,
    ) -> Result<(Vec<ScenarioOutcome>, Option<Bounds>), RunnerError> {
        let entry = piece.entry.expect("topology pieces carry their entry");
        let explorer = spec_explorer(&entry.spec, entry.graph.clone())
            .map_err(|e| RunnerError::new(e.to_string()))?;
        let space = LabelSpace::new(self.l).expect("l >= 2");
        let alg: Box<dyn RendezvousAlgorithm> = if self.fast {
            Box::new(Fast::new(entry.graph.clone(), explorer, space))
        } else {
            Box::new(Cheap::new(entry.graph.clone(), explorer, space))
        };
        let bounds = Bounds {
            time: alg.time_bound(),
            cost: alg.cost_bound(),
        };
        let outcomes = runner.outcomes(&AlgorithmExecutor::new(alg.as_ref()), &piece.scenarios)?;
        Ok((outcomes, Some(bounds)))
    }
}

fn spec_list(seed: u64) -> Vec<GraphSpec> {
    vec![
        GraphSpec::Ring(RingSpec { n: 5 }),
        GraphSpec::ScrambledRing(SeededSpec { n: 5, seed }),
        GraphSpec::Tree(SeededSpec {
            n: 6,
            seed: seed + 1,
        }),
        GraphSpec::Tree(SeededSpec {
            n: 6,
            seed: seed + 2,
        }),
        GraphSpec::permuted(GraphSpec::Torus(TorusSpec { w: 3, h: 3 }), seed + 3),
        GraphSpec::permuted(GraphSpec::Ring(RingSpec { n: 6 }), seed + 4),
    ]
}

fn build_topo(seed: u64, l: u64, cap: usize) -> TopoGrid {
    // The horizon mirrors the experiment: generous enough for both
    // algorithms on any of these graphs (E <= 2n - 3 <= 9, L <= l).
    let horizon = 40 * (2 * l + 1);
    TopoGrid::build(spec_list(seed), |_, g| {
        Grid::new(horizon)
            .label_pairs_both_orders(&[(1, l), (l / 2, l / 2 + 1)])
            .delays(&[0, 3])
            .all_start_pairs(g)
            .sample_cap(cap)
    })
    .expect("all specs build")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For every m ∈ {2, 3, 7}: sweep each topo shard independently,
    /// JSON-round-trip the per-shard reports, merge in order and in
    /// reverse — both must equal the unsharded sweep exactly, and the
    /// merged JSON must be **byte-identical** to the direct sweep's.
    #[test]
    fn merging_topo_shards_equals_the_unsharded_sweep(
        seed in 0u64..500,
        l in 2u64..6,
        cap in 5usize..30,
        fast in 0u8..2,
    ) {
        let topo = build_topo(seed, l, cap);
        let exec = AlgoTopo { l, fast: fast == 1 };
        let reference = Runner::sequential().sweep(&topo, &exec).expect("sweep");
        prop_assert_eq!(reference.executed(), topo.size());
        prop_assert!(reference.clean(), "paper bounds must hold on every sampled topology");

        let reference_json = serde_json::to_string(&reference).expect("serializable");
        for m in [2usize, 3, 7] {
            let mut merged = SweepReport::default();
            let mut reversed = SweepReport::default();
            let shard_reports: Vec<SweepReport> = (0..m)
                .map(|i| {
                    let report = Runner::sequential()
                        .sweep_shard(&topo, i, m, &exec)
                        .expect("shard sweep");
                    // Cross the "process boundary".
                    let json = serde_json::to_string(&report).expect("serializable");
                    serde_json::from_str(&json).expect("round trip")
                })
                .collect();
            for report in &shard_reports {
                merged = merged.merge(report);
            }
            for report in shard_reports.iter().rev() {
                reversed = reversed.merge(report);
            }
            prop_assert_eq!(&merged, &reference, "m = {}", m);
            prop_assert_eq!(&reversed, &reference, "m = {} (reverse merge)", m);
            prop_assert_eq!(
                serde_json::to_string(&merged).expect("serializable"),
                reference_json.clone(),
                "merged JSON must be byte-identical (m = {})", m
            );
        }
    }

    /// Parallel topo sweeps fold identically to sequential ones.
    #[test]
    fn parallel_topo_sweep_is_deterministic(seed in 0u64..200) {
        let topo = build_topo(seed, 4, 9);
        let exec = AlgoTopo { l: 4, fast: false };
        let seq = Runner::sequential().sweep(&topo, &exec).expect("sweep");
        let par = Runner::with_threads(8).sweep(&topo, &exec).expect("sweep");
        prop_assert_eq!(seq, par);
    }
}

/// The cached graph contract: every piece of any sharding refers back to
/// the same entry — and hence the same `Arc` allocation — not a rebuilt
/// clone.
#[test]
fn entries_share_one_graph_allocation_per_spec() {
    let topo = build_topo(7, 3, 10);
    for entry in topo.entries() {
        let again = entry.spec.build().unwrap();
        assert_eq!(*entry.graph, again, "spec determinism");
        for m in [2usize, 5] {
            for i in 0..m {
                let (lo, hi) = topo.shard(i, m);
                for piece in topo.pieces(lo, hi) {
                    let e = piece.entry.expect("topology pieces carry their entry");
                    if e.spec_index == entry.spec_index {
                        assert!(std::sync::Arc::ptr_eq(&e.graph, &entry.graph));
                    }
                }
            }
        }
    }
}
