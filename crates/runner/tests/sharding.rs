//! Multi-process determinism, single-process-tested: merging the shard
//! sweeps of a grid workload must reproduce the unsharded sequential
//! sweep **field for field** — witness indices included — for every
//! shard count, and the report must survive a serde round trip (the
//! shard→merge path crosses a process boundary as JSON).

use proptest::prelude::*;
use rendezvous_core::{Cheap, Fast, LabelSpace, RendezvousAlgorithm};
use rendezvous_explore::OrientedRingExplorer;
use rendezvous_graph::generators;
use rendezvous_runner::{AlgorithmExecutor, Bounded, Bounds, Grid, Runner, SweepReport};
use std::sync::Arc;

fn sweep_setup(n: usize, l: u64, fast: bool) -> (Box<dyn RendezvousAlgorithm>, Option<Bounds>) {
    let g = Arc::new(generators::oriented_ring(n).unwrap());
    let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
    let space = LabelSpace::new(l).unwrap();
    let alg: Box<dyn RendezvousAlgorithm> = if fast {
        Box::new(Fast::new(g, ex, space))
    } else {
        Box::new(Cheap::new(g, ex, space))
    };
    let bounds = Some(Bounds {
        time: alg.time_bound(),
        cost: alg.cost_bound(),
    });
    (alg, bounds)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For every m ∈ {2, 3, 7}: sweep each of the m shards independently
    /// (each through its own executor, as separate processes would),
    /// serde-round-trip the per-shard reports, merge them in order and in
    /// reverse — both must equal the unsharded sequential sweep exactly.
    #[test]
    fn merging_shard_sweeps_equals_the_unsharded_sweep(
        n in 4usize..9,
        l in 2u64..7,
        delay in 0u64..9,
        cap in 0usize..60,
        fast in 0u8..2,
    ) {
        let (alg, bounds) = sweep_setup(n, l, fast == 1);
        let mut grid = Grid::new(4 * alg.time_bound() + 4 * delay)
            .label_pairs_both_orders(&[(1, l), (l / 2, l / 2 + 1)])
            .delays(&[0, delay])
            .all_start_pairs(alg.graph());
        // cap < 5 means "no sampling cap" (caps that tiny make the sweep
        // degenerate; 0 is not a legal cap at all).
        if cap >= 5 {
            grid = grid.sample_cap(cap);
        }

        let reference_executor = AlgorithmExecutor::new(alg.as_ref());
        let reference = Runner::sequential()
            .sweep(&grid, &Bounded::new(&reference_executor, bounds))
            .expect("valid configurations");

        for m in [2usize, 3, 7] {
            let mut merged = SweepReport::default();
            let mut reversed = SweepReport::default();
            let shard_reports: Vec<SweepReport> = (0..m)
                .map(|i| {
                    // Fresh executor per shard: each process compiles its
                    // own schedule cache; determinism must not depend on a
                    // shared one.
                    let executor = AlgorithmExecutor::new(alg.as_ref());
                    let report = Runner::sequential()
                        .sweep_shard(&grid, i, m, &Bounded::new(&executor, bounds))
                        .expect("valid configurations");
                    // Cross the "process boundary".
                    let json = serde_json::to_string(&report).expect("serializable");
                    serde_json::from_str(&json).expect("round trip")
                })
                .collect();
            for report in &shard_reports {
                merged = merged.merge(report);
            }
            for report in shard_reports.iter().rev() {
                reversed = reversed.merge(report);
            }
            prop_assert_eq!(&merged, &reference, "m = {}", m);
            prop_assert_eq!(&reversed, &reference, "m = {} (reverse merge)", m);
        }
    }
}

/// The executor's two compile caches (label → schedule, (label, start) →
/// flat plan) change nothing observable: a sweep with one shared executor
/// equals a sweep where every scenario pays a fresh compile (the
/// pre-cache behavior), and the caches hold exactly the distinct labels /
/// (label, start) pairs of the grid.
#[test]
fn schedule_memoization_is_invisible_to_results() {
    let (alg, bounds) = sweep_setup(7, 6, true);
    let grid = Grid::new(4 * alg.time_bound())
        .label_pairs_both_orders(&[(1, 6), (2, 3), (1, 3)])
        .delays(&[0, 2, 5])
        .all_start_pairs(alg.graph());

    let shared = AlgorithmExecutor::new(alg.as_ref());
    let cached = Runner::parallel()
        .sweep(&grid, &Bounded::new(&shared, bounds))
        .unwrap();
    // Distinct labels of the grid: {1, 2, 3, 6}; every label visits every
    // one of the 7 start nodes across the ordered start pairs.
    assert_eq!(shared.compiled_labels(), 4);
    assert_eq!(shared.compiled_plans(), 4 * 7);

    let mut uncached = SweepReport::default();
    for (i, s) in grid.scenarios().iter().enumerate() {
        use rendezvous_runner::Executor;
        // A fresh executor per scenario recompiles every schedule.
        let outcome = AlgorithmExecutor::new(alg.as_ref()).run(s).unwrap();
        uncached.absorb("", i, None, &outcome, bounds);
    }
    assert_eq!(cached, uncached);
}

/// Invalid labels surface as errors through the cached path, same as they
/// did through the uncached one.
#[test]
fn cached_executor_still_rejects_invalid_labels() {
    let (alg, _) = sweep_setup(5, 4, false);
    let executor = AlgorithmExecutor::new(alg.as_ref());
    assert!(executor.schedule(0).is_err(), "label 0 is not positive");
    assert!(executor.schedule(3).is_ok());
    assert!(
        executor.schedule(99).is_err(),
        "label outside the space must not cache"
    );
    assert_eq!(executor.compiled_labels(), 1);
    // The flat-plan cache guards the same boundary.
    use rendezvous_graph::NodeId;
    assert!(executor.plan(0, NodeId::new(0)).is_err());
    assert!(executor.plan(3, NodeId::new(2)).is_ok());
    assert_eq!(executor.compiled_plans(), 1);
}
