//! The Runner's two core guarantees, as tests:
//!
//! 1. **Determinism** — a parallel [`Runner::sweep`] produces a
//!    [`SweepReport`] identical to a sequential fold of the very same
//!    workload (property-tested over random instances);
//! 2. **Model fidelity** — edge crossings are *never* reported as
//!    meetings, no matter how they reach the statistics (regression test
//!    for the paper's "agents crossing inside an edge do not notice each
//!    other" rule surviving the aggregation layer).

use proptest::prelude::*;
use rendezvous_core::{Cheap, Fast, LabelSpace, RendezvousAlgorithm};
use rendezvous_explore::OrientedRingExplorer;
use rendezvous_graph::{generators, NodeId, Port};
use rendezvous_runner::{
    fold_outcomes, AlgorithmExecutor, Bounded, Bounds, Executor, FactoryExecutor, Grid, Runner,
};
use rendezvous_sim::{Action, ScriptedAgent};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parallel sweep aggregates == sequential fold of the same grid, for
    /// arbitrary ring sizes, label spaces, delay sets, thread counts and
    /// algorithms.
    #[test]
    fn parallel_sweep_equals_sequential_fold(
        n in 4usize..10,
        l in 2u64..8,
        delay in 0u64..12,
        threads in 2usize..9,
        fast in 0u8..2,
    ) {
        let g = Arc::new(generators::oriented_ring(n).unwrap());
        let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
        let space = LabelSpace::new(l).unwrap();
        let alg: Box<dyn RendezvousAlgorithm> = if fast == 0 {
            Box::new(Fast::new(g.clone(), ex, space))
        } else {
            Box::new(Cheap::new(g.clone(), ex, space))
        };
        let bounds = Some(Bounds { time: alg.time_bound(), cost: alg.cost_bound() });
        // Distinct labels only: identical labels can never break symmetry.
        let grid = Grid::new(4 * alg.time_bound() + 4 * delay)
            .label_pairs_both_orders(&[(1, l), (l / 2, l / 2 + 1)])
            .delays(&[0, delay])
            .all_start_pairs(&g);
        let executor = AlgorithmExecutor::new(alg.as_ref());

        // Reference: execute and fold strictly sequentially, by hand.
        let outcomes: Vec<_> = grid
            .scenarios()
            .iter()
            .map(|s| executor.run(s).expect("valid configuration"))
            .collect();
        let reference = fold_outcomes(&outcomes, bounds);

        // Parallel runner over the same grid, as a Workload.
        let parallel = Runner::with_threads(threads)
            .sweep(&grid, &Bounded::new(&executor, bounds))
            .expect("valid configurations");

        prop_assert_eq!(&parallel, &reference);
        // And the single-threaded runner agrees too.
        let sequential = Runner::sequential()
            .sweep(&grid, &Bounded::new(&executor, bounds))
            .expect("valid configurations");
        prop_assert_eq!(&sequential, &reference);
        // Sanity: the paper's algorithms meet everywhere within 4x bounds.
        prop_assert_eq!(reference.failures(), 0);
        prop_assert!(reference.clean());
    }

    /// The capped grid is a deterministic subset: sweeping it twice (with
    /// different thread counts) gives identical reports.
    #[test]
    fn capped_grids_sweep_deterministically(
        n in 4usize..9,
        cap in 1usize..40,
        threads in 2usize..8,
    ) {
        let g = Arc::new(generators::oriented_ring(n).unwrap());
        let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
        let alg = Cheap::new(g.clone(), ex, LabelSpace::new(4).unwrap());
        let grid = Grid::new(4 * alg.time_bound())
            .label_pairs_both_orders(&[(1, 4), (2, 3)])
            .delays(&[0, 1, 7])
            .all_start_pairs(&g)
            .sample_cap(cap);
        prop_assert!(grid.scenarios().len() <= cap.min(grid.full_size()));
        let executor = AlgorithmExecutor::new(&alg);
        let a = Runner::with_threads(threads).sweep(&grid, &executor).unwrap();
        let b = Runner::sequential().sweep(&grid, &executor).unwrap();
        prop_assert_eq!(a, b);
    }
}

/// Two adjacent agents walking toward each other on a 4-ring swap nodes
/// through the same edge every round and never stand on a common node:
/// the engine counts crossings, and the aggregation layer must report
/// them as crossings — never as meetings.
#[test]
fn edge_crossings_are_never_reported_as_meetings() {
    let g = generators::oriented_ring(4).unwrap();
    let horizon = 8;
    let executor = FactoryExecutor::new(&g, |_scenario| {
        (
            Box::new(ScriptedAgent::new(vec![
                Action::Move(Port::new(0));
                horizon as usize
            ])) as Box<dyn rendezvous_sim::AgentBehavior>,
            Box::new(ScriptedAgent::new(vec![
                Action::Move(Port::new(1));
                horizon as usize
            ])) as Box<dyn rendezvous_sim::AgentBehavior>,
        )
    });
    // Adjacent ordered start pairs (i, i+1): the cw/ccw pair swaps every
    // other round; positions coincide only if 2r ≡ 1 (mod 4) — never.
    let pairs: Vec<(NodeId, NodeId)> = (0..4)
        .map(|i| (NodeId::new(i), NodeId::new((i + 1) % 4)))
        .collect();
    let grid = Grid::new(horizon)
        .label_pairs_ordered(&[(1, 2)])
        .start_pairs(&pairs);
    for runner in [Runner::sequential(), Runner::with_threads(4)] {
        let stats = runner.sweep(&grid, &executor).unwrap().solo();
        assert_eq!(stats.executed, 4);
        assert_eq!(
            stats.meetings, 0,
            "a crossing inside an edge must never count as a meeting"
        );
        assert_eq!(stats.failures, 4, "all four executions time out instead");
        assert!(
            stats.crossings >= 4,
            "the swaps themselves must be visible as crossings (got {})",
            stats.crossings
        );
        assert!(stats.worst_time.is_none() && stats.worst_cost.is_none());
    }
}

/// The exhaustive adversary, through the grid: a clockwise walker versus
/// an idler on an `n`-ring is worst when the idler sits one step
/// counter-clockwise of the walker — time exactly `n − 1` — and the
/// sweep's witness must name that placement. (This coverage moved here
/// from the old `rendezvous_sim::adversary` module, which the Runner
/// replaced.)
#[test]
fn worst_case_witness_of_walker_vs_idler_is_ring_length_minus_one() {
    let n = 8usize;
    let g = generators::oriented_ring(n).unwrap();
    let executor = FactoryExecutor::new(&g, |_scenario| {
        (
            Box::new(ScriptedAgent::new(vec![Action::Move(Port::new(0)); 512]))
                as Box<dyn rendezvous_sim::AgentBehavior>,
            Box::new(ScriptedAgent::new(vec![])) as Box<dyn rendezvous_sim::AgentBehavior>,
        )
    });
    let grid = Grid::new(1_000)
        .label_pairs_ordered(&[(1, 2)])
        .delays(&[0, 3, 10])
        .all_start_pairs(&g);
    let stats = Runner::with_threads(4)
        .sweep(&grid, &executor)
        .unwrap()
        .solo();
    assert_eq!(stats.failures, 0);
    assert_eq!(stats.max_time, (n - 1) as u64, "idler just behind walker");
    assert_eq!(stats.max_cost, (n - 1) as u64);
    let w = stats.worst_time.unwrap();
    assert_eq!(
        (w.scenario.start_b().index() + n - w.scenario.start_a().index()) % n,
        n - 1,
        "worst placement is one step counter-clockwise"
    );
}

/// The same fidelity holds for real algorithm sweeps: whenever a sweep
/// reports crossings, none of them leaked into the meeting count — every
/// meeting has a strictly positive time or a found-asleep partner, and
/// meetings + failures account for every scenario.
#[test]
fn algorithm_sweeps_account_meetings_and_crossings_separately() {
    let g = Arc::new(generators::oriented_ring(6).unwrap());
    let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
    let alg = Fast::new(g.clone(), ex, LabelSpace::new(8).unwrap());
    let grid = Grid::new(4 * alg.time_bound())
        .label_pairs_both_orders(&[(1, 2), (7, 8), (1, 8)])
        .delays(&[0, 1, 5])
        .all_start_pairs(&g);
    let stats = Runner::parallel()
        .sweep(&grid, &AlgorithmExecutor::new(&alg))
        .unwrap()
        .solo();
    assert_eq!(stats.meetings + stats.failures, stats.executed);
    assert_eq!(stats.failures, 0, "Fast always meets within 4x its bound");
}
