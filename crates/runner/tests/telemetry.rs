//! The telemetry layer's two contracts, end to end:
//!
//! 1. **Non-perturbation** — a sweep with a [`Metrics`] sink attached
//!    produces a [`SweepReport`] byte-identical to one without (the
//!    sink observes, it never enters the fold);
//! 2. **Counter determinism** — the exact counter sections agree
//!    between sequential and parallel runs of the same execution plan
//!    (the plan-cache counters are raced, but race-proof: a miss is
//!    counted exactly once per distinct key, at insertion).
//!
//! Plus the `RunnerError` context contract: errors surface the failing
//! scenario's *global* index and piece key in the rendered message.

use rendezvous_core::{Fast, LabelSpace, RendezvousAlgorithm};
use rendezvous_explore::OrientedRingExplorer;
use rendezvous_graph::{generators, NodeId};
use rendezvous_runner::PieceExecutor;
use rendezvous_runner::{
    AlgorithmExecutor, BatchExecutor, Bounded, Bounds, Grid, Placement, Runner, RunnerError,
    Scenario, WorkPiece,
};
use rendezvous_telemetry::Metrics;
use std::sync::Arc;

fn ring_fast(n: usize, l: u64) -> (Arc<rendezvous_graph::PortLabeledGraph>, Fast) {
    let g = Arc::new(generators::oriented_ring(n).unwrap());
    let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
    let alg = Fast::new(g.clone(), ex, LabelSpace::new(l).unwrap());
    (g, alg)
}

fn standard_grid(alg: &dyn RendezvousAlgorithm) -> Grid {
    Grid::new(4 * alg.time_bound())
        .label_pairs_both_orders(&[(1, 4), (2, 3)])
        .delays(&[0, 1, 5])
        .all_start_pairs(alg.graph())
}

/// The error-context contract at the unit level: `at_index` pins the
/// in-piece index (first writer wins), `in_piece` lifts it to the
/// global index and tags the fold key.
#[test]
fn error_context_renders_global_index_and_key() {
    let rendered = RunnerError::new("boom").at_index(2).in_piece(10, "tree");
    assert_eq!(rendered.index(), Some(12));
    assert_eq!(
        rendered.to_string(),
        "scenario execution failed at global index 12 [tree]: boom"
    );
    // No context attached: the bare message.
    assert_eq!(
        RunnerError::new("boom").to_string(),
        "scenario execution failed: boom"
    );
    // The first index sticks; a later `at_index` must not clobber it.
    let first_wins = RunnerError::new("x").at_index(3).at_index(9);
    assert_eq!(first_wins.index(), Some(3));
    // An empty piece key adds no bracket noise.
    assert_eq!(
        RunnerError::new("x")
            .at_index(1)
            .in_piece(0, "")
            .to_string(),
        "scenario execution failed at global index 1: x"
    );
}

/// End to end: a sweep over a grid whose third label pair is invalid
/// (label 0 — the core layer rejects it) fails with the *global*
/// scenario index attached — identically under sequential and parallel
/// execution.
#[test]
fn sweep_error_carries_global_scenario_index() {
    let (_, alg) = ring_fast(6, 4);
    let grid = Grid::new(4 * alg.time_bound())
        .label_pairs_ordered(&[(1, 2), (2, 3), (3, 0)])
        .delays(&[0])
        .start_pairs(&[(NodeId::new(0), NodeId::new(3))]);
    let executor = AlgorithmExecutor::new(&alg);
    let bounded = Bounded::new(&executor, None);
    for runner in [Runner::sequential(), Runner::with_threads(4)] {
        let err = runner
            .sweep(&grid, &bounded)
            .expect_err("label 0 is invalid");
        assert_eq!(err.index(), Some(2), "global index of the bad scenario");
        let msg = err.to_string();
        assert!(
            msg.contains("at global index 2"),
            "rendered message names the global index: {msg}"
        );
    }
}

/// Contract 1: telemetry attached everywhere (runner + executor),
/// running parallel, folds the same report — byte for byte, through
/// the same serde path the shard ledger uses — as a bare sequential
/// sweep.
#[test]
fn metrics_never_perturb_report_bytes() {
    let (_, alg) = ring_fast(7, 4);
    let grid = standard_grid(&alg);
    let bounds = Some(Bounds {
        time: alg.time_bound(),
        cost: alg.cost_bound(),
    });

    let bare_executor = AlgorithmExecutor::new(&alg);
    let bare = Runner::sequential()
        .sweep(&grid, &Bounded::new(&bare_executor, bounds))
        .expect("sweep succeeds");

    let metrics = Arc::new(Metrics::new());
    let observed_executor = AlgorithmExecutor::new(&alg).with_metrics(&metrics);
    let observed = Runner::with_threads(4)
        .with_metrics(Arc::clone(&metrics))
        .sweep(&grid, &Bounded::new(&observed_executor, bounds))
        .expect("sweep succeeds");

    assert_eq!(
        serde_json::to_string(&bare).unwrap(),
        serde_json::to_string(&observed).unwrap(),
        "telemetry-on report must be byte-identical to telemetry-off"
    );
    // ... and the sink actually observed the sweep.
    let snap = metrics.snapshot();
    let total = u64::try_from(grid.scenarios().len()).unwrap();
    assert_eq!(snap.counters.get("scenarios_executed"), Some(&total));
    assert!(snap.process.get("plan_cache_misses").copied() > Some(0));
}

/// Contract 2: the exact counter sections agree between a sequential
/// and a parallel run — including the raced plan-cache counters, whose
/// hit/miss split is deterministic by construction (misses counted
/// once per distinct key at `Entry::Vacant`, hits everywhere else).
#[test]
fn parallel_and_sequential_counters_agree() {
    let (_, alg) = ring_fast(8, 6);
    let grid = standard_grid(&alg);
    let bounds = Some(Bounds {
        time: alg.time_bound(),
        cost: alg.cost_bound(),
    });
    let mut snapshots = Vec::new();
    for threads in [1usize, 8] {
        let metrics = Arc::new(Metrics::new());
        let executor = BatchExecutor::new(&alg)
            .with_bounds(bounds)
            .with_metrics(&metrics);
        let report = Runner::with_threads(threads)
            .with_metrics(Arc::clone(&metrics))
            .sweep(&grid, &executor)
            .expect("sweep succeeds");
        assert!(!report.groups.is_empty());
        snapshots.push(metrics.snapshot());
    }
    let (sequential, parallel) = (&snapshots[0], &snapshots[1]);
    assert_eq!(sequential.counters, parallel.counters);
    assert_eq!(sequential.process, parallel.process);
    // The plan-cache split is exact: hits + misses = accesses, and
    // misses = distinct (label, start) keys compiled.
    let hits = sequential.process["plan_cache_hits"];
    let misses = sequential.process["plan_cache_misses"];
    assert!(hits > 0 && misses > 0, "hits {hits}, misses {misses}");
}

/// The batched-vs-fallback classification observed on a mixed piece: a
/// hand-built piece whose last scenario delays the *first* agent (a
/// batched-solver precondition violation) routes exactly that scenario
/// through the stepped fallback — and the counters say so.
#[test]
fn batch_classification_counters_split_batched_from_fallback() {
    let (_, alg) = ring_fast(6, 4);
    let horizon = 4 * alg.time_bound();
    let mut scenarios = vec![
        Scenario::pair(1, 2, NodeId::new(0), NodeId::new(3), 0, horizon),
        Scenario::pair(1, 2, NodeId::new(0), NodeId::new(3), 1, horizon),
        Scenario::pair(2, 3, NodeId::new(1), NodeId::new(4), 0, horizon),
    ];
    // First agent delayed: `BatchExecutor::batchable` rejects it, so it
    // must fall back to the stepped engine.
    scenarios.push(Scenario::fleet(
        vec![
            Placement {
                label: 1,
                start: NodeId::new(0),
                delay: 1,
            },
            Placement {
                label: 2,
                start: NodeId::new(3),
                delay: 0,
            },
        ],
        horizon,
    ));
    let piece = WorkPiece {
        offset: 0,
        key: "",
        entry: None,
        scenarios,
    };
    let metrics = Arc::new(Metrics::new());
    let executor = BatchExecutor::new(&alg).with_metrics(&metrics);
    let (outcomes, _) = executor
        .run_piece(&Runner::sequential(), &piece)
        .expect("mixed piece succeeds");
    assert_eq!(outcomes.len(), 4);
    let snap = metrics.snapshot();
    assert_eq!(snap.counters.get("scenarios_batched"), Some(&3));
    assert_eq!(snap.counters.get("scenarios_stepped"), Some(&1));
    // Two distinct (labels, starts, horizon) groups among the batched 3.
    assert_eq!(snap.process.get("batch_groups"), Some(&2));
    // The shared plan cache served both paths: 4 distinct (label, start)
    // plans compiled, every further access a hit.
    assert_eq!(snap.process.get("plan_cache_misses"), Some(&4));
    assert!(snap.process["plan_cache_hits"] > 0);
}
