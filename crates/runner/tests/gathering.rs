//! Gathering sweeps inherit the Runner's two multi-process guarantees,
//! property-tested over random fleets (mirroring `tests/sharding.rs` for
//! the pair sweeps) — a fleet-mode [`Grid`] is the same [`Workload`] as
//! a pair grid, so the generic pipeline covers it unchanged:
//!
//! 1. **Order determinism** — a parallel gathering sweep folds to the
//!    same [`SweepReport`] as a sequential one (merge events,
//!    per-scenario ratio witnesses included);
//! 2. **Shard-merge byte identity** — for m ∈ {2, 3, 7}, sweeping the m
//!    shards independently, serde-round-tripping each partial and merging
//!    reproduces the unsharded sweep field for field *and byte for byte*
//!    as JSON.

use proptest::prelude::*;
use rendezvous_core::{Fast, LabelSpace, RendezvousAlgorithm};
use rendezvous_explore::OrientedRingExplorer;
use rendezvous_graph::generators;
use rendezvous_runner::{FleetRule, GatheringExecutor, Grid, Runner, SweepReport};
use std::sync::Arc;

/// A fleet grid on an `n`-ring under `Fast` with label space `l`: fleet
/// sizes {2, 3} (plus 5 when it fits), two rotations, two delay phases.
fn gathering_setup(n: usize, l: u64, phase: u64) -> (GatheringExecutor, Grid) {
    let g = Arc::new(generators::oriented_ring(n).unwrap());
    let ex = Arc::new(OrientedRingExplorer::new(g.clone()).unwrap());
    let alg: Arc<dyn RendezvousAlgorithm> =
        Arc::new(Fast::new(g.clone(), ex, LabelSpace::new(l).unwrap()));
    let mut ks = vec![2usize, 3];
    if n >= 5 && l >= 5 {
        ks.push(5);
    }
    let rule = FleetRule::spread(&g, l);
    let k_max = *ks.iter().max().unwrap() as u64;
    let horizon = 4 * (k_max - 1) * (alg.time_bound() + rule.max_delay());
    let grid = Grid::new(horizon)
        .fleet_sizes(&ks)
        .fleet_rule(rule)
        .fleet_rotations(&[0, 1])
        .delays(&[0, phase]);
    (GatheringExecutor::new(alg), grid)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Parallel == sequential, and every sampled gathering stays within
    /// its own merge-and-restart bound.
    #[test]
    fn gathering_sweeps_are_order_deterministic(
        n in 6usize..12,
        l in 5u64..17,
        phase in 0u64..13,
        threads in 2usize..8,
    ) {
        let (executor, grid) = gathering_setup(n, l, phase);
        let sequential = Runner::sequential().sweep(&grid, &executor).unwrap();
        let parallel = Runner::with_threads(threads)
            .sweep(&grid, &executor)
            .unwrap();
        prop_assert_eq!(&parallel, &sequential);
        // The claim under test rides along: no failures, no violations
        // of the per-scenario (k−1)(T + max delay) bound, and the ratio
        // witness exists because every outcome carries its bound.
        let stats = sequential.solo();
        prop_assert_eq!(stats.failures, 0);
        prop_assert_eq!(stats.time_violations, 0);
        prop_assert!(stats.worst_ratio.is_some());
        prop_assert!(stats.merges >= stats.executed as u64);
    }

    /// For every m ∈ {2, 3, 7}: merging the m independently-swept,
    /// serde-round-tripped shards equals the unsharded sweep — including
    /// its serialized JSON, byte for byte.
    #[test]
    fn gathering_shard_merges_are_byte_identical(
        n in 6usize..11,
        l in 5u64..13,
        phase in 0u64..13,
    ) {
        let (executor, grid) = gathering_setup(n, l, phase);
        let reference = Runner::sequential().sweep(&grid, &executor).unwrap();
        let reference_json = serde_json::to_string(&reference).unwrap();
        for m in [2usize, 3, 7] {
            let mut merged = SweepReport::default();
            for i in 0..m {
                let report = Runner::sequential()
                    .sweep_shard(&grid, i, m, &executor)
                    .unwrap();
                // Cross the "process boundary".
                let json = serde_json::to_string(&report).unwrap();
                let back: SweepReport = serde_json::from_str(&json).unwrap();
                merged = merged.merge(&back);
            }
            prop_assert_eq!(&merged, &reference, "m = {}", m);
            prop_assert_eq!(
                serde_json::to_string(&merged).unwrap(),
                reference_json.clone(),
                "merged JSON differs for m = {}",
                m
            );
        }
    }
}
