//! The batched engine *is* the stepped engine: for every algorithm,
//! seeded topology and delay set here, a sweep through [`BatchExecutor`]
//! must reproduce the stepped [`AlgorithmExecutor`] sweep exactly —
//! sums, maxima, bound failures, worst-case witnesses and their global
//! indices. The stepped engine simulates round by round; the batched one
//! never simulates at all (it solves trajectory arrays), so agreement
//! here is the oracle the `--engine batched` experiment pipeline rests
//! on.

use proptest::prelude::*;
use rendezvous_core::{Cheap, Fast, LabelSpace, RendezvousAlgorithm};
use rendezvous_explore::spec_explorer;
use rendezvous_graph::{ErdosRenyiSpec, GraphSpec, RegularSpec, RingSpec, SeededSpec};
use rendezvous_runner::{
    AlgorithmExecutor, BatchExecutor, Bounded, Bounds, Grid, Runner, SweepReport,
};
use std::sync::Arc;

/// One seeded spec per family knob, mirroring the experiment's spec pool.
fn spec_for(family: u8, n: usize, seed: u64) -> GraphSpec {
    match family {
        0 => GraphSpec::Ring(RingSpec { n }),
        1 => GraphSpec::ScrambledRing(SeededSpec { n, seed }),
        2 => GraphSpec::Tree(SeededSpec { n, seed }),
        3 => GraphSpec::Regular(RegularSpec {
            n: n + n % 2,
            d: 3,
            seed,
        }),
        _ => GraphSpec::ErdosRenyi(ErdosRenyiSpec {
            n,
            edge_permille: 600,
            seed,
        }),
    }
}

fn algorithm_on(
    spec: &GraphSpec,
    l: u64,
    fast: bool,
) -> (
    Arc<rendezvous_graph::PortLabeledGraph>,
    Box<dyn RendezvousAlgorithm>,
) {
    let graph = Arc::new(spec.build().expect("seeded specs build"));
    let explorer = spec_explorer(spec, graph.clone()).expect("every family has an explorer");
    let space = LabelSpace::new(l).expect("l >= 2");
    let alg: Box<dyn RendezvousAlgorithm> = if fast {
        Box::new(Fast::new(graph.clone(), explorer, space))
    } else {
        Box::new(Cheap::new(graph.clone(), explorer, space))
    };
    (graph, alg)
}

fn stepped_sweep(runner: &Runner, grid: &Grid, alg: &dyn RendezvousAlgorithm) -> SweepReport {
    let executor = AlgorithmExecutor::new(alg);
    let bounds = Some(Bounds {
        time: alg.time_bound(),
        cost: alg.cost_bound(),
    });
    runner
        .sweep(grid, &Bounded::new(&executor, bounds))
        .expect("stepped sweep")
}

fn batched_sweep(runner: &Runner, grid: &Grid, alg: &dyn RendezvousAlgorithm) -> SweepReport {
    let executor = BatchExecutor::new(alg).with_bounds(Some(Bounds {
        time: alg.time_bound(),
        cost: alg.cost_bound(),
    }));
    runner.sweep(grid, &executor).expect("batched sweep")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cheap/Fast × five seeded graph families × adversarial delay sets:
    /// the batched report equals the stepped report, witnesses included.
    /// The delay axis deliberately contains 0, clustered small values and
    /// delays beyond the horizon (the second agent never wakes).
    #[test]
    fn batched_sweeps_equal_stepped_sweeps(
        family in 0u8..5,
        n in 5usize..9,
        seed in 0u64..300,
        l in 2u64..5,
        fast in 0u8..2,
        spread in 1u64..40,
    ) {
        let spec = spec_for(family, n, seed);
        let (graph, alg) = algorithm_on(&spec, l, fast == 1);
        // A generous horizon (meetings happen) and a starved one
        // (timeouts and bound failures happen); equality must hold on
        // both, clean or not.
        for horizon in [4 * alg.time_bound(), n as u64] {
            let grid = Grid::new(horizon)
                .label_pairs_both_orders(&[(1, l)])
                .delays(&[0, 1, spread, horizon, horizon + spread])
                .all_start_pairs(&graph);
            let stepped = stepped_sweep(&Runner::sequential(), &grid, alg.as_ref());
            let batched = batched_sweep(&Runner::sequential(), &grid, alg.as_ref());
            prop_assert_eq!(&stepped, &batched, "horizon {}", horizon);
            prop_assert_eq!(
                serde_json::to_string(&stepped).expect("serializable"),
                serde_json::to_string(&batched).expect("serializable"),
                "reports must serialize byte-identically (horizon {})", horizon
            );
        }
    }

    /// BatchExecutor is deterministic under parallelism, like every other
    /// executor: thread count must not leak into the report.
    #[test]
    fn parallel_batched_sweep_equals_sequential(
        seed in 0u64..200,
        threads in 2usize..9,
        fast in 0u8..2,
    ) {
        let spec = spec_for(1, 7, seed);
        let (graph, alg) = algorithm_on(&spec, 4, fast == 1);
        let grid = Grid::new(4 * alg.time_bound())
            .label_pairs_both_orders(&[(1, 4), (2, 3)])
            .delays(&[0, 2, 5, 11])
            .all_start_pairs(&graph);
        let sequential = batched_sweep(&Runner::sequential(), &grid, alg.as_ref());
        let parallel = batched_sweep(&Runner::with_threads(threads), &grid, alg.as_ref());
        prop_assert_eq!(sequential, parallel);
    }

    /// Sharded batched sweeps merge to the direct batched sweep (the
    /// x10-style shard ledger path uses piece offsets, which the batched
    /// scatter must respect).
    #[test]
    fn sharded_batched_sweeps_merge_exactly(
        seed in 0u64..100,
        m in 2usize..5,
    ) {
        let spec = spec_for(2, 8, seed);
        let (graph, alg) = algorithm_on(&spec, 3, false);
        let grid = Grid::new(4 * alg.time_bound())
            .label_pairs_both_orders(&[(1, 3)])
            .delays(&[0, 1, 6])
            .all_start_pairs(&graph);
        let bounds = Some(Bounds { time: alg.time_bound(), cost: alg.cost_bound() });
        let executor = BatchExecutor::new(alg.as_ref()).with_bounds(bounds);
        let direct = Runner::sequential().sweep(&grid, &executor).expect("sweep");
        let mut merged = SweepReport::default();
        for i in 0..m {
            let shard = Runner::sequential()
                .sweep_shard(&grid, i, m, &executor)
                .expect("shard sweep");
            merged = merged.merge(&shard);
        }
        prop_assert_eq!(merged, direct);
    }
}

/// Zero-delay-only grids (every scenario in one batch group per start
/// pair) and single-scenario grids both take the batched path; spot-check
/// them against the stepped engine directly.
#[test]
fn degenerate_grids_agree() {
    let spec = spec_for(0, 6, 0);
    let (graph, alg) = algorithm_on(&spec, 4, true);
    for delays in [vec![0], vec![3]] {
        let grid = Grid::new(4 * alg.time_bound())
            .label_pairs_both_orders(&[(1, 4)])
            .delays(&delays)
            .all_start_pairs(&graph);
        let stepped = stepped_sweep(&Runner::sequential(), &grid, alg.as_ref());
        let batched = batched_sweep(&Runner::sequential(), &grid, alg.as_ref());
        assert_eq!(stepped, batched, "delays {delays:?}");
        assert!(stepped.clean());
    }
}
