//! Property tests for [`TelemetrySnapshot::merge`]: the counter
//! sections must fold associatively and commutatively (like
//! `GroupStats::merge`), or the spawn driver's shard-order-independent
//! sidecar guarantee is a lie.

use proptest::collection::vec;
use proptest::prelude::*;
use rendezvous_telemetry::TelemetrySnapshot;

/// A small closed key universe so generated sections collide often —
/// merges that never share a key exercise nothing.
const KEYS: [&str; 5] = ["alpha", "beta", "gamma", "delta", "epsilon"];

type Entries = Vec<(usize, u64)>;

fn snapshot(
    counters: &[(usize, u64)],
    process: &[(usize, u64)],
    hist: &[(usize, u64)],
    wall: u64,
) -> TelemetrySnapshot {
    let mut snap = TelemetrySnapshot::empty();
    for (key, value) in counters {
        let slot = snap
            .counters
            .entry(KEYS[key % KEYS.len()].to_string())
            .or_insert(0);
        *slot = slot.saturating_add(*value);
    }
    for (key, value) in process {
        let slot = snap
            .process
            .entry(KEYS[key % KEYS.len()].to_string())
            .or_insert(0);
        *slot = slot.saturating_add(*value);
    }
    for (key, value) in hist {
        let buckets = snap
            .timing
            .histograms
            .entry(KEYS[key % KEYS.len()].to_string())
            .or_default();
        let idx = key % 7;
        if buckets.len() <= idx {
            buckets.resize(idx + 1, 0);
        }
        buckets[idx] = buckets[idx].saturating_add((*value).max(1));
    }
    snap.timing.wall_ns = u128::from(wall);
    snap
}

fn entries() -> impl Strategy<Value = Entries> {
    vec((0usize..32, 0u64..1_000_000), 0..8)
}

fn sections() -> impl Strategy<Value = (Entries, Entries, Entries, u64)> {
    (entries(), entries(), entries(), 0u64..1_000_000)
}

proptest! {
    #[test]
    fn merge_is_commutative(
        (a_c, a_p, a_h, a_w) in sections(),
        (b_c, b_p, b_h, b_w) in sections(),
    ) {
        let a = snapshot(&a_c, &a_p, &a_h, a_w);
        let b = snapshot(&b_c, &b_p, &b_h, b_w);
        prop_assert_eq!(a.merge(&b), b.merge(&a));
    }

    #[test]
    fn merge_is_associative(
        (a_c, a_p, a_h, a_w) in sections(),
        (b_c, b_p, b_h, b_w) in sections(),
        (c_c, c_p, c_h, c_w) in sections(),
    ) {
        let a = snapshot(&a_c, &a_p, &a_h, a_w);
        let b = snapshot(&b_c, &b_p, &b_h, b_w);
        let c = snapshot(&c_c, &c_p, &c_h, c_w);
        prop_assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
    }

    #[test]
    fn empty_is_the_merge_identity((c, p, h, w) in sections()) {
        let snap = snapshot(&c, &p, &h, w);
        prop_assert_eq!(snap.merge(&TelemetrySnapshot::empty()), snap.clone());
        prop_assert_eq!(TelemetrySnapshot::empty().merge(&snap), snap);
    }

    #[test]
    fn merged_render_is_order_independent_bytes(
        a_c in entries(), b_c in entries(), c_c in entries(),
    ) {
        // The sidecar guarantee in its final form: fold three "shards"
        // in two different orders, the rendered counter bytes match.
        let a = snapshot(&a_c, &[], &[], 0);
        let b = snapshot(&b_c, &[], &[], 0);
        let c = snapshot(&c_c, &[], &[], 0);
        let forward = c.merge(&b).merge(&a).render();
        let backward = a.merge(&b).merge(&c).render();
        prop_assert_eq!(forward, backward);
    }
}
