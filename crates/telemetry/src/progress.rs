//! Live progress: shared counters, the stderr reporter, and the
//! spawn-driver child protocol.
//!
//! Everything here is display-only — progress never feeds a fold, a
//! report, or a ledger, which is why the sampler thread and the child
//! pipe drains below are sanctioned (and annotated) departures from
//! the Runner's order-deterministic parallelism.
//!
//! The child protocol is line-oriented over stderr: a spawned shard
//! periodically emits `@progress {json}` and finally `@telemetry
//! {json}`; every other stderr line is buffered verbatim as
//! diagnostics. stdout stays untouched — the shard-ledger channel the
//! byte-identity discipline covers.

use crate::metrics::{Metrics, Stopwatch};
use crate::snapshot::TelemetrySnapshot;
use serde::{Deserialize, Serialize};
use std::io::{BufRead, BufReader, Read};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Monotonic progress state, updated by the sweep and sampled by the
/// reporter.
#[derive(Debug, Default)]
pub struct Progress {
    scenarios_total: AtomicU64,
    scenarios_done: AtomicU64,
    pieces_total: AtomicU64,
    pieces_done: AtomicU64,
}

impl Progress {
    /// Announces work: a sweep range adds its scenario and piece totals
    /// before executing (totals accumulate across sweeps in a session).
    pub fn add_planned(&self, scenarios: usize, pieces: usize) {
        self.scenarios_total
            .fetch_add(to_u64(scenarios), Ordering::Relaxed);
        self.pieces_total
            .fetch_add(to_u64(pieces), Ordering::Relaxed);
    }

    /// Marks one piece (of `scenarios` units) complete.
    pub fn piece_done(&self, scenarios: usize) {
        self.scenarios_done
            .fetch_add(to_u64(scenarios), Ordering::Relaxed);
        self.pieces_done.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time reading.
    #[must_use]
    pub fn counts(&self) -> ProgressCounts {
        ProgressCounts {
            scenarios_done: self.scenarios_done.load(Ordering::Relaxed),
            scenarios_total: self.scenarios_total.load(Ordering::Relaxed),
            pieces_done: self.pieces_done.load(Ordering::Relaxed),
            pieces_total: self.pieces_total.load(Ordering::Relaxed),
        }
    }
}

fn to_u64(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// A point-in-time progress reading — the payload of `@progress`
/// protocol lines.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProgressCounts {
    /// Scenarios executed so far.
    pub scenarios_done: u64,
    /// Scenarios planned.
    pub scenarios_total: u64,
    /// Work pieces completed so far.
    pub pieces_done: u64,
    /// Work pieces planned.
    pub pieces_total: u64,
}

impl ProgressCounts {
    /// Field-wise saturating sum — how the hub totals child slots.
    #[must_use]
    pub fn plus(&self, other: &ProgressCounts) -> ProgressCounts {
        ProgressCounts {
            scenarios_done: self.scenarios_done.saturating_add(other.scenarios_done),
            scenarios_total: self.scenarios_total.saturating_add(other.scenarios_total),
            pieces_done: self.pieces_done.saturating_add(other.pieces_done),
            pieces_total: self.pieces_total.saturating_add(other.pieces_total),
        }
    }
}

/// Prefix of a child's periodic progress line.
pub const PROGRESS_PREFIX: &str = "@progress ";
/// Prefix of a child's final telemetry line.
pub const TELEMETRY_PREFIX: &str = "@telemetry ";

/// Renders a `@progress` protocol line (no trailing newline).
#[must_use]
pub fn progress_line(counts: &ProgressCounts) -> String {
    let payload = serde_json::to_string(counts).expect("progress counts serialize");
    format!("{PROGRESS_PREFIX}{payload}")
}

/// Renders a `@telemetry` protocol line (no trailing newline).
#[must_use]
pub fn telemetry_line(snapshot: &TelemetrySnapshot) -> String {
    let payload = serde_json::to_string(snapshot).expect("snapshot serializes");
    format!("{TELEMETRY_PREFIX}{payload}")
}

/// A recognized child-protocol stderr line.
#[derive(Debug)]
pub enum ProtocolLine {
    /// A periodic `@progress` reading.
    Progress(ProgressCounts),
    /// The final `@telemetry` snapshot.
    Telemetry(TelemetrySnapshot),
}

/// Parses one stderr line; `None` means "not protocol" (including a
/// malformed payload) — the caller keeps such lines as diagnostics.
#[must_use]
pub fn parse_protocol_line(line: &str) -> Option<ProtocolLine> {
    if let Some(payload) = line.strip_prefix(PROGRESS_PREFIX) {
        return serde_json::from_str(payload)
            .ok()
            .map(ProtocolLine::Progress);
    }
    if let Some(payload) = line.strip_prefix(TELEMETRY_PREFIX) {
        return TelemetrySnapshot::parse(payload)
            .ok()
            .map(ProtocolLine::Telemetry);
    }
    None
}

/// Aggregates per-child progress for the spawn driver: each child's
/// pump stores its latest reading in its slot; the parent reporter
/// samples the sum.
#[derive(Debug)]
pub struct ProgressHub {
    slots: Vec<Progress>,
}

impl ProgressHub {
    /// A hub with one slot per spawned child.
    #[must_use]
    pub fn new(children: usize) -> Arc<ProgressHub> {
        Arc::new(ProgressHub {
            slots: (0..children).map(|_| Progress::default()).collect(),
        })
    }

    /// Overwrites child `child`'s slot with its latest reading.
    pub fn update(&self, child: usize, counts: &ProgressCounts) {
        if let Some(slot) = self.slots.get(child) {
            slot.scenarios_done
                .store(counts.scenarios_done, Ordering::Relaxed);
            slot.scenarios_total
                .store(counts.scenarios_total, Ordering::Relaxed);
            slot.pieces_done
                .store(counts.pieces_done, Ordering::Relaxed);
            slot.pieces_total
                .store(counts.pieces_total, Ordering::Relaxed);
        }
    }

    /// The sum over all child slots.
    #[must_use]
    pub fn total(&self) -> ProgressCounts {
        self.slots
            .iter()
            .map(Progress::counts)
            .fold(ProgressCounts::default(), |acc, c| acc.plus(&c))
    }
}

/// How the reporter writes to stderr.
#[derive(Debug, Clone, Copy)]
enum Mode {
    /// `\r`-refreshed human line with rate and ETA.
    Human,
    /// Machine-readable `@progress` lines for a parent driver.
    Stream,
}

/// The sampling interval — coarse enough to be invisible in cost,
/// fine enough to feel live.
const SAMPLE_EVERY: Duration = Duration::from_millis(200);

/// A stderr progress reporter on a sampling thread. Dropping it (or
/// calling [`ProgressReporter::finish`]) emits one final reading and
/// joins the thread.
pub struct ProgressReporter {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl ProgressReporter {
    /// Human-readable reporter sampling a [`Metrics`] sink.
    #[must_use]
    pub fn human(metrics: &Arc<Metrics>) -> ProgressReporter {
        let m = Arc::clone(metrics);
        ProgressReporter::spawn(Mode::Human, move || m.progress().counts())
    }

    /// Protocol-line reporter sampling a [`Metrics`] sink — what a
    /// spawned shard runs so its parent can aggregate.
    #[must_use]
    pub fn stream(metrics: &Arc<Metrics>) -> ProgressReporter {
        let m = Arc::clone(metrics);
        ProgressReporter::spawn(Mode::Stream, move || m.progress().counts())
    }

    /// Human-readable reporter sampling a [`ProgressHub`] — what the
    /// spawn driver runs over its children's aggregated slots.
    #[must_use]
    pub fn aggregate(hub: &Arc<ProgressHub>) -> ProgressReporter {
        let h = Arc::clone(hub);
        ProgressReporter::spawn(Mode::Human, move || h.total())
    }

    fn spawn(mode: Mode, source: impl Fn() -> ProgressCounts + Send + 'static) -> ProgressReporter {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let watch = Stopwatch::start();
        // analyze: allow(d5) — display-only stderr sampler: reads atomics,
        // writes no fold, joins before the process emits exact output
        let thread = std::thread::spawn(move || loop {
            let finished = flag.load(Ordering::Relaxed);
            emit(mode, &watch, &source(), finished);
            if finished {
                break;
            }
            std::thread::sleep(SAMPLE_EVERY);
        });
        ProgressReporter {
            stop,
            thread: Some(thread),
        }
    }

    /// Emits one final reading and joins the sampler.
    pub fn finish(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ProgressReporter {
    fn drop(&mut self) {
        self.halt();
    }
}

/// One reporter tick. All arithmetic is exact integer math — rate in
/// scenarios/second, ETA in deciseconds — so the display layer obeys
/// the same no-float rule as the folds it watches.
fn emit(mode: Mode, watch: &Stopwatch, counts: &ProgressCounts, finished: bool) {
    match mode {
        Mode::Stream => eprintln!("{}", progress_line(counts)),
        Mode::Human => {
            let ms = u128::from(watch.elapsed_ms().max(1));
            let rate = u128::from(counts.scenarios_done) * 1000 / ms;
            let remaining = counts.scenarios_total.saturating_sub(counts.scenarios_done);
            let eta_ds = if counts.scenarios_done > 0 && remaining > 0 {
                u128::from(remaining) * ms / u128::from(counts.scenarios_done) / 100
            } else {
                0
            };
            eprint!(
                "\r[sweep] pieces {}/{} · scenarios {}/{} · {rate}/s · ETA {}.{}s   ",
                counts.pieces_done,
                counts.pieces_total,
                counts.scenarios_done,
                counts.scenarios_total,
                eta_ds / 10,
                eta_ds % 10
            );
            if finished {
                eprintln!();
            }
        }
    }
}

/// Drains one spawned child's stderr on a reader thread: protocol
/// lines update the hub / capture the snapshot, everything else is
/// buffered as diagnostics and returned at [`StderrPump::finish`].
pub struct StderrPump {
    thread: JoinHandle<(String, Option<TelemetrySnapshot>)>,
}

impl StderrPump {
    /// Starts draining `reader` (child `child`'s stderr) into `hub`.
    #[must_use]
    pub fn pump<R: Read + Send + 'static>(
        reader: R,
        hub: &Arc<ProgressHub>,
        child: usize,
    ) -> StderrPump {
        let hub = Arc::clone(hub);
        // analyze: allow(d5) — pipe drain, not a fold: one reader per child
        // keeps the child from blocking on a full stderr; its buffered
        // diagnostics are joined back in child-index order by the caller
        let thread = std::thread::spawn(move || {
            let mut diagnostics = String::new();
            let mut snapshot = None;
            for line in BufReader::new(reader).lines() {
                let Ok(line) = line else { break };
                match parse_protocol_line(&line) {
                    Some(ProtocolLine::Progress(counts)) => hub.update(child, &counts),
                    Some(ProtocolLine::Telemetry(snap)) => snapshot = Some(snap),
                    None => {
                        diagnostics.push_str(&line);
                        diagnostics.push('\n');
                    }
                }
            }
            (diagnostics, snapshot)
        });
        StderrPump { thread }
    }

    /// Joins the drain: the child's non-protocol stderr and its final
    /// snapshot, if it sent one.
    #[must_use]
    pub fn finish(self) -> (String, Option<TelemetrySnapshot>) {
        self.thread.join().unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::SCHEMA;

    #[test]
    fn progress_accumulates_and_reads_back() {
        let p = Progress::default();
        p.add_planned(100, 4);
        p.add_planned(50, 2);
        p.piece_done(30);
        p.piece_done(20);
        let c = p.counts();
        assert_eq!(c.scenarios_total, 150);
        assert_eq!(c.pieces_total, 6);
        assert_eq!(c.scenarios_done, 50);
        assert_eq!(c.pieces_done, 2);
    }

    #[test]
    fn protocol_lines_round_trip() {
        let counts = ProgressCounts {
            scenarios_done: 3,
            scenarios_total: 9,
            pieces_done: 1,
            pieces_total: 2,
        };
        match parse_protocol_line(&progress_line(&counts)) {
            Some(ProtocolLine::Progress(back)) => assert_eq!(back, counts),
            other => panic!("expected progress line, got {other:?}"),
        }
        let snap = TelemetrySnapshot::empty();
        match parse_protocol_line(&telemetry_line(&snap)) {
            Some(ProtocolLine::Telemetry(back)) => assert_eq!(back.schema, SCHEMA),
            other => panic!("expected telemetry line, got {other:?}"),
        }
        assert!(parse_protocol_line("plain diagnostic output").is_none());
        assert!(parse_protocol_line("@progress not-json").is_none());
    }

    #[test]
    fn hub_overwrites_slots_and_totals() {
        let hub = ProgressHub::new(2);
        hub.update(
            0,
            &ProgressCounts {
                scenarios_done: 5,
                scenarios_total: 10,
                pieces_done: 1,
                pieces_total: 2,
            },
        );
        hub.update(
            1,
            &ProgressCounts {
                scenarios_done: 7,
                scenarios_total: 10,
                pieces_done: 2,
                pieces_total: 2,
            },
        );
        // A later reading overwrites, not accumulates.
        hub.update(
            1,
            &ProgressCounts {
                scenarios_done: 8,
                scenarios_total: 10,
                pieces_done: 2,
                pieces_total: 2,
            },
        );
        let total = hub.total();
        assert_eq!(total.scenarios_done, 13);
        assert_eq!(total.scenarios_total, 20);
        assert_eq!(total.pieces_done, 3);
        // Out-of-range slots are ignored, not a panic.
        hub.update(9, &ProgressCounts::default());
    }

    #[test]
    fn pump_splits_protocol_from_diagnostics() {
        let hub = ProgressHub::new(1);
        let counts = ProgressCounts {
            scenarios_done: 4,
            scenarios_total: 8,
            pieces_done: 1,
            pieces_total: 2,
        };
        let mut child_stderr = String::new();
        child_stderr.push_str("warming up\n");
        child_stderr.push_str(&progress_line(&counts));
        child_stderr.push('\n');
        child_stderr.push_str(&telemetry_line(&TelemetrySnapshot::empty()));
        child_stderr.push('\n');
        child_stderr.push_str("done\n");
        let pump = StderrPump::pump(std::io::Cursor::new(child_stderr.into_bytes()), &hub, 0);
        let (diagnostics, snapshot) = pump.finish();
        assert_eq!(diagnostics, "warming up\ndone\n");
        assert_eq!(snapshot, Some(TelemetrySnapshot::empty()));
        assert_eq!(hub.total().scenarios_done, 4);
    }

    #[test]
    fn reporter_finishes_cleanly() {
        let metrics = Arc::new(Metrics::new());
        metrics.progress().add_planned(10, 1);
        let reporter = ProgressReporter::stream(&metrics);
        metrics.progress().piece_done(10);
        reporter.finish();
    }
}
