//! The metrics sink: named monotonic counters, power-of-two-bucketed
//! duration histograms, and the quarantined wall clock.
//!
//! Handles are `Arc`'d atomics so hot paths (per piece, per cache
//! probe) never take the registry lock after registration. Everything
//! exact — counts — lands in sorted maps at snapshot time; everything
//! wall-clock-derived lands in the snapshot's quarantined `timing`
//! section and nowhere else.

use crate::progress::Progress;
use crate::snapshot::{TelemetrySnapshot, TimingSection, QUARANTINE, SCHEMA};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// Which sidecar section a counter belongs to.
///
/// The split is the sharding-invariance contract: a direct sweep and
/// any shard-and-merge of the same index range must agree on the
/// `Scenario` section byte for byte, while `Process` counts describe
/// one process's execution plan (they still merge by summation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scope {
    /// Counts attributed to individual workload units: summing the
    /// shards of any partition reproduces the direct sweep's value
    /// exactly (e.g. scenarios executed, batch-vs-fallback
    /// classification, which is a pure per-scenario predicate).
    Scenario,
    /// Counts describing one process's execution structure: pieces
    /// completed, plan-cache hits/misses, batch groups. Deterministic
    /// for a given execution plan, but a 3-shard run legitimately
    /// compiles some plans three times.
    Process,
}

/// A monotonic counter handle — clone freely, increment from any
/// thread.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by a `usize` count (saturating into `u64`).
    pub fn add_count(&self, n: usize) {
        self.add(u64::try_from(n).unwrap_or(u64::MAX));
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket count: index 0 holds zero-length observations, index `i > 0`
/// holds durations whose bit length is `i` — i.e. `2^(i-1) <= ns <
/// 2^i`. 65 buckets cover the full `u64` nanosecond range.
const BUCKETS: usize = 65;

/// A duration histogram with power-of-two nanosecond buckets.
#[derive(Debug)]
struct Histogram {
    buckets: [AtomicU64; BUCKETS],
}

/// A histogram handle — clone freely, record from any thread.
#[derive(Debug, Clone)]
pub struct HistogramHandle(Arc<Histogram>);

impl HistogramHandle {
    fn new() -> HistogramHandle {
        HistogramHandle(Arc::new(Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }))
    }

    /// Records one observation of `ns` nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        self.0.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// The bucket counts with trailing zero buckets trimmed (the
    /// canonical sidecar form — trimming keeps merge associative).
    #[must_use]
    pub fn buckets(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }
}

/// The bucket index of a duration: its bit length (0 for 0 ns).
fn bucket_of(ns: u64) -> usize {
    let bits = u64::BITS - ns.leading_zeros();
    usize::try_from(bits).unwrap_or(BUCKETS - 1)
}

/// The workspace's only sanctioned wall-clock reader outside the bench
/// harness: everything it measures is display-only or lands in the
/// sidecar's quarantined `timing` section, never in a fold.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    started: Instant,
}

impl Stopwatch {
    /// Starts measuring now.
    #[must_use]
    pub fn start() -> Stopwatch {
        Stopwatch {
            started: Instant::now(),
        }
    }

    /// Nanoseconds since [`Stopwatch::start`] (saturating).
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Milliseconds since [`Stopwatch::start`] (saturating).
    #[must_use]
    pub fn elapsed_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }
}

/// The metrics sink: a registry of named counters and histograms plus
/// live [`Progress`] state.
///
/// One `Arc<Metrics>` is shared by the runner, the executors, and the
/// reporter; [`Metrics::snapshot`] folds it into the deterministic
/// sidecar schema.
#[derive(Debug)]
pub struct Metrics {
    counters: RwLock<BTreeMap<(Scope, String), Counter>>,
    histograms: RwLock<BTreeMap<String, HistogramHandle>>,
    progress: Progress,
    started: Stopwatch,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// An empty sink; the wall-clock baseline for the quarantined
    /// `timing.wall_ns` field starts here.
    #[must_use]
    pub fn new() -> Metrics {
        Metrics {
            counters: RwLock::new(BTreeMap::new()),
            histograms: RwLock::new(BTreeMap::new()),
            progress: Progress::default(),
            started: Stopwatch::start(),
        }
    }

    /// The counter named `name` in `scope`, registering it at zero on
    /// first use. Registration order does not matter: the snapshot
    /// renders from a sorted map.
    pub fn counter(&self, scope: Scope, name: &str) -> Counter {
        let key = (scope, name.to_string());
        if let Some(c) = self
            .counters
            .read()
            .expect("counter registry poisoned")
            .get(&key)
        {
            return c.clone();
        }
        self.counters
            .write()
            .expect("counter registry poisoned")
            .entry(key)
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// The histogram named `name`, registering it empty on first use.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        if let Some(h) = self
            .histograms
            .read()
            .expect("histogram registry poisoned")
            .get(name)
        {
            return h.clone();
        }
        self.histograms
            .write()
            .expect("histogram registry poisoned")
            .entry(name.to_string())
            .or_insert_with(HistogramHandle::new)
            .clone()
    }

    /// The live progress state the reporter samples.
    #[must_use]
    pub fn progress(&self) -> &Progress {
        &self.progress
    }

    /// Folds the sink into the deterministic sidecar schema: counters
    /// split by scope into sorted sections, histograms and total wall
    /// time quarantined under `timing`.
    #[must_use]
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut counters = BTreeMap::new();
        let mut process = BTreeMap::new();
        for ((scope, name), c) in self
            .counters
            .read()
            .expect("counter registry poisoned")
            .iter()
        {
            match scope {
                Scope::Scenario => counters.insert(name.clone(), c.get()),
                Scope::Process => process.insert(name.clone(), c.get()),
            };
        }
        let histograms = self
            .histograms
            .read()
            .expect("histogram registry poisoned")
            .iter()
            .map(|(name, h)| (name.clone(), h.buckets()))
            .collect();
        TelemetrySnapshot {
            schema: SCHEMA.to_string(),
            counters,
            process,
            timing: TimingSection {
                quarantine: QUARANTINE.to_string(),
                wall_ns: u128::from(self.started.elapsed_ns()),
                histograms,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_is_the_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn counters_register_once_and_share_state() {
        let metrics = Metrics::new();
        let a = metrics.counter(Scope::Scenario, "hits");
        let b = metrics.counter(Scope::Scenario, "hits");
        a.inc();
        b.add(2);
        b.add_count(3);
        assert_eq!(a.get(), 6);
        // Same name in the other scope is a distinct counter.
        assert_eq!(metrics.counter(Scope::Process, "hits").get(), 0);
    }

    #[test]
    fn histogram_buckets_trim_trailing_zeros() {
        let metrics = Metrics::new();
        let h = metrics.histogram("wall");
        assert!(h.buckets().is_empty());
        h.record_ns(0);
        h.record_ns(5);
        h.record_ns(5);
        assert_eq!(h.buckets(), vec![1, 0, 0, 2]);
    }

    #[test]
    fn snapshot_routes_scopes_to_sections() {
        let metrics = Metrics::new();
        metrics
            .counter(Scope::Scenario, "scenarios_executed")
            .add(7);
        metrics.counter(Scope::Process, "pieces_completed").add(2);
        metrics.histogram("piece_wall_ns").record_ns(100);
        let snap = metrics.snapshot();
        assert_eq!(snap.schema, SCHEMA);
        assert_eq!(snap.counters.get("scenarios_executed"), Some(&7));
        assert_eq!(snap.process.get("pieces_completed"), Some(&2));
        assert_eq!(snap.timing.quarantine, QUARANTINE);
        assert_eq!(
            snap.timing.histograms["piece_wall_ns"].iter().sum::<u64>(),
            1
        );
    }
}
