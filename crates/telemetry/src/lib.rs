//! `rendezvous-telemetry` — determinism-safe observability for the
//! sweep engine.
//!
//! A long sweep was a black box: no progress, no ETA, no cache-hit or
//! batch-fallback rates. This crate adds those signals under one hard
//! invariant: **telemetry must be invisible to the byte-identity
//! discipline**. Attaching a [`Metrics`] sink, streaming progress, or
//! emitting a sidecar may never change a `SweepReport`, a markdown
//! table, or a shard-ledger byte — CI diffs telemetry-on against
//! telemetry-off output to prove it.
//!
//! Three pieces:
//!
//! * [`Metrics`] — named monotonic counters and power-of-two-bucketed
//!   duration histograms, handed out as cheap atomic handles. Counters
//!   are split by [`Scope`]: per-scenario counts partition across any
//!   shard layout (the sums are sharding-invariant), per-process counts
//!   describe one execution plan (cache hits, pieces).
//! * [`ProgressReporter`] — a stderr sampling thread rendering
//!   pieces-done / scenarios-per-second / ETA, with a machine-readable
//!   stream mode (`@progress` lines) and a [`ProgressHub`] aggregating
//!   spawned shard children.
//! * [`TelemetrySnapshot`] — the `TELEMETRY.json` sidecar schema. Exact
//!   counter sections render from `BTreeMap`s (sorted keys, byte-stable
//!   across reruns and shard merges); every wall-clock-derived field is
//!   quarantined in the `timing` section behind an explicit marker.
//!   [`TelemetrySnapshot::merge`] is associative and commutative, so
//!   spawned shards fold into one sidecar in any order.
//!
//! The crate is the workspace's **only** sanctioned wall-clock reader
//! outside the bench harness: [`Stopwatch`] wraps `Instant` here, under
//! a scoped `analyze.toml` timing exemption, so `rendezvous-analyze`
//! keeps flagging clocks everywhere else.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod progress;
mod snapshot;

pub use metrics::{Counter, HistogramHandle, Metrics, Scope, Stopwatch};
pub use progress::{
    parse_protocol_line, progress_line, telemetry_line, Progress, ProgressCounts, ProgressHub,
    ProgressReporter, ProtocolLine, StderrPump, PROGRESS_PREFIX, TELEMETRY_PREFIX,
};
pub use snapshot::{TelemetrySnapshot, TimingSection, QUARANTINE, SCHEMA};
