//! The `TELEMETRY.json` sidecar schema and its associative merge.
//!
//! Determinism contract, section by section:
//!
//! * `counters` — per-scenario counts. Byte-stable across reruns *and*
//!   across shard layouts: summing any partition's shards reproduces
//!   the direct sweep's section exactly.
//! * `process` — per-process structural counts (cache hits, pieces).
//!   Byte-stable across reruns of the same execution plan; merging
//!   shards sums them (a 3-shard run legitimately compiles more plans
//!   than a direct run).
//! * `timing` — everything wall-clock-derived, quarantined behind an
//!   explicit marker field so no consumer can mistake it for exact
//!   data. Excluded from byte-identity checks by construction.
//!
//! All maps are `BTreeMap`s: keys render sorted, so equal counts mean
//! equal bytes.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The sidecar schema identifier.
pub const SCHEMA: &str = "rendezvous-telemetry/v1";

/// The marker carried by the `timing` section: the one part of the
/// sidecar that varies run to run.
pub const QUARANTINE: &str =
    "wall-clock quarantine: fields here vary run to run and are excluded from byte-identity checks";

/// A point-in-time fold of a [`Metrics`](crate::Metrics) sink — the
/// sidecar document, and the unit the spawn driver merges across
/// shard children.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// Sharding-invariant per-scenario counters, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Per-process structural counters, sorted by name.
    pub process: BTreeMap<String, u64>,
    /// The wall-clock quarantine.
    pub timing: TimingSection,
}

/// The quarantined wall-clock section of the sidecar.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingSection {
    /// Always [`QUARANTINE`] — a reader-facing marker, not data.
    pub quarantine: String,
    /// Total wall nanoseconds the sink was live (summed across
    /// processes after a merge).
    pub wall_ns: u128,
    /// Duration histograms: bucket `i > 0` counts observations whose
    /// nanosecond bit length is `i` (bucket 0: zero-length), trailing
    /// zero buckets trimmed.
    pub histograms: BTreeMap<String, Vec<u64>>,
}

impl Default for TelemetrySnapshot {
    fn default() -> Self {
        TelemetrySnapshot::empty()
    }
}

impl TelemetrySnapshot {
    /// The merge identity: empty sections, zero wall time.
    #[must_use]
    pub fn empty() -> TelemetrySnapshot {
        TelemetrySnapshot {
            schema: SCHEMA.to_string(),
            counters: BTreeMap::new(),
            process: BTreeMap::new(),
            timing: TimingSection {
                quarantine: QUARANTINE.to_string(),
                wall_ns: 0,
                histograms: BTreeMap::new(),
            },
        }
    }

    /// Folds two snapshots: counter sections sum key-wise, histograms
    /// sum bucket-wise, wall time adds. Associative and commutative
    /// (property-tested), so spawned shards merge in any order —
    /// `merge` with [`TelemetrySnapshot::empty`] is the identity.
    #[must_use]
    pub fn merge(&self, other: &TelemetrySnapshot) -> TelemetrySnapshot {
        TelemetrySnapshot {
            schema: self.schema.clone(),
            counters: merge_counts(&self.counters, &other.counters),
            process: merge_counts(&self.process, &other.process),
            timing: TimingSection {
                quarantine: self.timing.quarantine.clone(),
                wall_ns: self.timing.wall_ns.saturating_add(other.timing.wall_ns),
                histograms: merge_histograms(&self.timing.histograms, &other.timing.histograms),
            },
        }
    }

    /// The pretty-printed sidecar document (trailing newline included).
    #[must_use]
    pub fn render(&self) -> String {
        let mut doc = serde_json::to_string_pretty(self).expect("snapshot serializes");
        doc.push('\n');
        doc
    }

    /// Parses a sidecar document or a protocol-line payload.
    ///
    /// # Errors
    ///
    /// Malformed JSON or a document that does not match the schema.
    pub fn parse(text: &str) -> Result<TelemetrySnapshot, String> {
        serde_json::from_str(text).map_err(|e| format!("telemetry snapshot: {e}"))
    }
}

/// Key-wise saturating sum of two counter sections.
fn merge_counts(a: &BTreeMap<String, u64>, b: &BTreeMap<String, u64>) -> BTreeMap<String, u64> {
    let mut out = a.clone();
    for (name, add) in b {
        let slot = out.entry(name.clone()).or_insert(0);
        *slot = slot.saturating_add(*add);
    }
    out
}

/// Bucket-wise sum of two histogram sections, preserving the
/// trailing-zero-trimmed canonical form.
fn merge_histograms(
    a: &BTreeMap<String, Vec<u64>>,
    b: &BTreeMap<String, Vec<u64>>,
) -> BTreeMap<String, Vec<u64>> {
    let mut out = a.clone();
    for (name, add) in b {
        let slot = out.entry(name.clone()).or_default();
        if slot.len() < add.len() {
            slot.resize(add.len(), 0);
        }
        for (i, n) in add.iter().enumerate() {
            slot[i] = slot[i].saturating_add(*n);
        }
        while slot.last() == Some(&0) {
            slot.pop();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(counters: &[(&str, u64)], process: &[(&str, u64)], wall: u128) -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::empty();
        for (k, v) in counters {
            s.counters.insert((*k).to_string(), *v);
        }
        for (k, v) in process {
            s.process.insert((*k).to_string(), *v);
        }
        s.timing.wall_ns = wall;
        s
    }

    #[test]
    fn merge_sums_key_wise_and_empty_is_identity() {
        let a = snap(&[("x", 1), ("y", 2)], &[("p", 5)], 10);
        let b = snap(&[("y", 3), ("z", 4)], &[], 7);
        let m = a.merge(&b);
        assert_eq!(m.counters.get("x"), Some(&1));
        assert_eq!(m.counters.get("y"), Some(&5));
        assert_eq!(m.counters.get("z"), Some(&4));
        assert_eq!(m.process.get("p"), Some(&5));
        assert_eq!(m.timing.wall_ns, 17);
        assert_eq!(a.merge(&TelemetrySnapshot::empty()), a);
        assert_eq!(TelemetrySnapshot::empty().merge(&a), a);
    }

    #[test]
    fn merge_histograms_keeps_canonical_trim() {
        let mut a = TelemetrySnapshot::empty();
        a.timing.histograms.insert("h".into(), vec![1, 0, 2]);
        let mut b = TelemetrySnapshot::empty();
        b.timing.histograms.insert("h".into(), vec![0, 1]);
        let m = a.merge(&b);
        assert_eq!(m.timing.histograms["h"], vec![1, 1, 2]);
    }

    #[test]
    fn render_is_sorted_and_round_trips() {
        let s = snap(&[("zeta", 1), ("alpha", 2)], &[("mid", 3)], 42);
        let doc = s.render();
        let alpha = doc.find("\"alpha\"").expect("alpha key");
        let zeta = doc.find("\"zeta\"").expect("zeta key");
        assert!(alpha < zeta, "counter keys render sorted");
        assert!(doc.ends_with('\n'));
        assert_eq!(TelemetrySnapshot::parse(&doc).expect("round trip"), s);
    }

    #[test]
    fn sections_appear_in_schema_order() {
        let doc = TelemetrySnapshot::empty().render();
        let schema = doc.find("\"schema\"").expect("schema");
        let counters = doc.find("\"counters\"").expect("counters");
        let process = doc.find("\"process\"").expect("process");
        let timing = doc.find("\"timing\"").expect("timing");
        assert!(schema < counters && counters < process && process < timing);
    }
}
