//! Gathering: the `k ≥ 2` generalization of rendezvous (all agents must
//! assemble at one node).
//!
//! The paper treats two agents and cites gathering as the natural
//! generalization (§1.4). The model extension is minimal and faithful:
//! agents that occupy the same node have *met*, and met agents may
//! communicate (the paper's motivation for meeting is exactly "to exchange
//! data"). A [`GatheringBehavior`] therefore receives, besides the usual
//! local observation, the labels of the **awake** agents co-located with it
//! at the start of the round. Sleeping agents cannot communicate (but still
//! count for the final all-together condition, which the engine checks on
//! positions alone).

use crate::{Action, AgentSpec, Meeting, Observation, SimError};
use rendezvous_graph::{NodeId, Port, PortLabeledGraph};

/// A deterministic gathering agent: like
/// [`AgentBehavior`](crate::AgentBehavior), plus awareness of co-located
/// awake agents' labels.
pub trait GatheringBehavior {
    /// Decides this round's action. `co_located` holds the labels of the
    /// other awake agents standing on the same node at the start of the
    /// round (empty when alone).
    fn next_action(&mut self, observation: Observation, co_located: &[u64]) -> Action;
}

/// Result of a gathering run.
#[derive(Debug, Clone)]
pub struct GatheringOutcome {
    /// Round and node at which all agents were first co-located.
    pub gathered: Option<Meeting>,
    /// Rounds simulated.
    pub rounds_executed: u64,
    /// Edge traversals per agent.
    pub per_agent_cost: Vec<u64>,
    /// Number of distinct occupied nodes (cluster count) after each round;
    /// useful to watch the merge process.
    pub cluster_history: Vec<usize>,
}

impl GatheringOutcome {
    /// Total edge traversals.
    #[must_use]
    pub fn cost(&self) -> u64 {
        self.per_agent_cost.iter().sum()
    }

    /// Returns `true` if gathering completed.
    #[must_use]
    pub fn gathered_all(&self) -> bool {
        self.gathered.is_some()
    }

    /// Number of merge events: rounds after which the cluster count
    /// strictly decreased, measured against the initial `k` separate
    /// clusters. A run in which no clusters ever merged reports **0**
    /// (the old hand-rolled `windows(2)`-plus-one count both missed a
    /// first-round merge and inflated every count by one).
    #[must_use]
    pub fn merge_events(&self) -> usize {
        let mut previous = self.per_agent_cost.len();
        self.cluster_history
            .iter()
            .filter(|&&clusters| {
                let decreased = clusters < previous;
                previous = clusters;
                decreased
            })
            .count()
    }
}

/// Runs a gathering of `k ≥ 2` agents with distinct labels and distinct
/// start nodes until all share a node or `max_rounds` elapse.
///
/// # Errors
///
/// Mirrors [`Simulation::run`](crate::Simulation::run): configuration
/// errors for bad starts/wakes/labels, [`SimError::InvalidMove`] for
/// behavior bugs.
pub fn run_gathering(
    graph: &PortLabeledGraph,
    mut agents: Vec<(u64, Box<dyn GatheringBehavior + '_>, AgentSpec)>,
    max_rounds: u64,
) -> Result<GatheringOutcome, SimError> {
    let k = agents.len();
    if k < 2 {
        return Err(SimError::TooFewAgents { got: k });
    }
    for (_, _, spec) in &agents {
        if !graph.contains(spec.start) {
            return Err(SimError::StartOutOfRange { node: spec.start });
        }
        if spec.wake_round == 0 {
            return Err(SimError::InvalidWakeRound);
        }
    }
    for i in 0..k {
        for j in (i + 1)..k {
            if agents[i].2.start == agents[j].2.start {
                return Err(SimError::StartsNotDistinct {
                    node: agents[i].2.start,
                });
            }
        }
    }
    if !rendezvous_graph::analysis::is_connected(graph) {
        return Err(SimError::NotConnected);
    }

    let mut positions: Vec<NodeId> = agents.iter().map(|(_, _, s)| s.start).collect();
    let mut entry_ports: Vec<Option<Port>> = vec![None; k];
    let mut per_agent_cost = vec![0u64; k];
    let mut cluster_history = Vec::new();
    let mut gathered = None;
    let mut rounds_executed = 0;

    for round in 1..=max_rounds {
        rounds_executed = round;
        // Who is awake and who stands where (start-of-round snapshot).
        let awake: Vec<bool> = agents
            .iter()
            .map(|(_, _, s)| round >= s.wake_round)
            .collect();
        let mut actions = vec![Action::Stay; k];
        for i in 0..k {
            if !awake[i] {
                continue;
            }
            let co_located: Vec<u64> = (0..k)
                .filter(|&j| j != i && awake[j] && positions[j] == positions[i])
                .map(|j| agents[j].0)
                .collect();
            let obs = Observation {
                local_round: round - agents[i].2.wake_round,
                degree: graph.degree(positions[i]),
                entry_port: entry_ports[i],
            };
            let a = agents[i].1.next_action(obs, &co_located);
            if let Action::Move(p) = a {
                if p.index() >= graph.degree(positions[i]) {
                    return Err(SimError::InvalidMove {
                        agent: i,
                        round,
                        port: p,
                        degree: graph.degree(positions[i]),
                    });
                }
            }
            actions[i] = a;
        }
        for i in 0..k {
            match actions[i] {
                Action::Stay => entry_ports[i] = None,
                Action::Move(p) => {
                    let t = graph.traverse(positions[i], p)?;
                    positions[i] = t.target;
                    entry_ports[i] = Some(t.entry_port);
                    per_agent_cost[i] += 1;
                }
            }
        }
        let mut occupied: Vec<NodeId> = positions.clone();
        occupied.sort_unstable();
        occupied.dedup();
        cluster_history.push(occupied.len());
        if occupied.len() == 1 {
            gathered = Some(Meeting {
                round,
                node: positions[0],
            });
            break;
        }
    }

    Ok(GatheringOutcome {
        gathered,
        rounds_executed,
        per_agent_cost,
        cluster_history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rendezvous_graph::generators;

    /// A gathering agent that walks clockwise until it has ever seen a
    /// smaller label, then freezes. Smallest label freezes... no: smallest
    /// never sees smaller, keeps walking — good enough for engine tests.
    struct ChaseDown {
        label: u64,
        frozen: bool,
    }

    impl GatheringBehavior for ChaseDown {
        fn next_action(&mut self, _obs: Observation, co_located: &[u64]) -> Action {
            if co_located.iter().any(|&l| l < self.label) {
                self.frozen = true;
            }
            if self.frozen {
                Action::Stay
            } else {
                Action::Move(Port::new(0))
            }
        }
    }

    #[test]
    fn engine_reports_cluster_merges() {
        // Idle low-label agent plus two chasers: the chasers sweep the
        // ring, freeze on the idle one, and gathering completes.
        let g = generators::oriented_ring(6).unwrap();
        struct Idle;
        impl GatheringBehavior for Idle {
            fn next_action(&mut self, _o: Observation, _c: &[u64]) -> Action {
                Action::Stay
            }
        }
        let agents: Vec<(u64, Box<dyn GatheringBehavior>, AgentSpec)> = vec![
            (1, Box::new(Idle), AgentSpec::immediate(NodeId::new(0))),
            (
                2,
                Box::new(ChaseDown {
                    label: 2,
                    frozen: false,
                }),
                AgentSpec::immediate(NodeId::new(2)),
            ),
            (
                3,
                Box::new(ChaseDown {
                    label: 3,
                    frozen: false,
                }),
                AgentSpec::immediate(NodeId::new(4)),
            ),
        ];
        let out = run_gathering(&g, agents, 100).unwrap();
        let m = out.gathered.expect("gathering completes");
        assert_eq!(m.node, NodeId::new(0));
        assert!(out.cluster_history.last() == Some(&1));
        // cluster count never increases once agents freeze together
        let min_seen = out
            .cluster_history
            .iter()
            .scan(usize::MAX, |m, &c| {
                *m = (*m).min(c);
                Some(*m)
            })
            .collect::<Vec<_>>();
        assert_eq!(min_seen.last(), Some(&1));
    }

    /// Regression for the merge-event count: it is **0-based** (no
    /// cluster-count decrease ⇒ 0 merges, not 1) and it sees a merge that
    /// happens in the very first round, which a `windows(2)` scan over
    /// the history alone cannot (the initial `k` is the baseline).
    #[test]
    fn merge_events_are_zero_based_and_count_first_round_merges() {
        // No decrease at all: two idlers parked apart forever.
        let out = GatheringOutcome {
            gathered: None,
            rounds_executed: 4,
            per_agent_cost: vec![0, 0],
            cluster_history: vec![2, 2, 2, 2],
        };
        assert_eq!(out.merge_events(), 0, "no merge may be invented");
        // A first-round merge (3 clusters → 2 before any window exists),
        // then another merge later: exactly two events.
        let out = GatheringOutcome {
            gathered: Some(Meeting {
                round: 3,
                node: NodeId::new(0),
            }),
            rounds_executed: 3,
            per_agent_cost: vec![1, 1, 1],
            cluster_history: vec![2, 2, 1],
        };
        assert_eq!(out.merge_events(), 2);
        // Fluctuating counts: only strict decreases count, increases
        // (clusters drifting apart) do not un-count them.
        let out = GatheringOutcome {
            gathered: None,
            rounds_executed: 5,
            per_agent_cost: vec![0; 4],
            cluster_history: vec![4, 3, 4, 3, 2],
        };
        assert_eq!(out.merge_events(), 3);
    }

    #[test]
    fn engine_validates_configuration() {
        let g = generators::oriented_ring(4).unwrap();
        struct Idle;
        impl GatheringBehavior for Idle {
            fn next_action(&mut self, _o: Observation, _c: &[u64]) -> Action {
                Action::Stay
            }
        }
        let one: Vec<(u64, Box<dyn GatheringBehavior>, AgentSpec)> =
            vec![(1, Box::new(Idle), AgentSpec::immediate(NodeId::new(0)))];
        assert!(matches!(
            run_gathering(&g, one, 10),
            Err(SimError::TooFewAgents { got: 1 })
        ));
    }

    #[test]
    fn sleeping_agents_are_invisible_to_communication() {
        // An awake agent parked on a sleeping one sees no co-located labels.
        let g = generators::oriented_ring(4).unwrap();
        struct Recorder {
            ever_saw: bool,
        }
        impl GatheringBehavior for Recorder {
            fn next_action(&mut self, _o: Observation, c: &[u64]) -> Action {
                if !c.is_empty() {
                    self.ever_saw = true;
                }
                Action::Move(Port::new(0))
            }
        }
        struct Idle;
        impl GatheringBehavior for Idle {
            fn next_action(&mut self, _o: Observation, _c: &[u64]) -> Action {
                Action::Stay
            }
        }
        let agents: Vec<(u64, Box<dyn GatheringBehavior>, AgentSpec)> = vec![
            (
                1,
                Box::new(Recorder { ever_saw: false }),
                AgentSpec::immediate(NodeId::new(0)),
            ),
            (2, Box::new(Idle), AgentSpec::delayed(NodeId::new(2), 1_000)),
        ];
        let out = run_gathering(&g, agents, 8).unwrap();
        // walker passes over the sleeper; engine does count positions for
        // the gathered check (they coincide at some round end):
        assert!(out.gathered_all());
    }
}
