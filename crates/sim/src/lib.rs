//! The synchronous execution model of Miller & Pelc (PODC 2014): agents as
//! deterministic state machines, an engine with exact meeting semantics,
//! solo executions, and k-agent gathering. The exhaustive adversary
//! (worst case over start positions, label orders and wake-up delays)
//! lives in the `rendezvous-runner` crate, which sweeps scenario grids
//! through this engine.
//!
//! # Model recap (§1.2 of the paper)
//!
//! Two agents start at **distinct** nodes of a connected, anonymous,
//! port-labelled graph, possibly woken in different rounds by an adversary.
//! In each round an awake agent either stays or moves through a chosen
//! port. Agents cannot mark nodes or communicate; they notice each other
//! only when they occupy the same node at the end of a round — crossing
//! inside an edge goes unnoticed. **Time** is counted from the wake-up of
//! the earlier agent; **cost** is the total number of edge traversals of
//! both agents.
//!
//! # Examples
//!
//! ```
//! use rendezvous_graph::{generators, NodeId, Port};
//! use rendezvous_sim::{Action, AgentSpec, ScriptedAgent, Simulation};
//!
//! let g = generators::oriented_ring(6).unwrap();
//! let walker = ScriptedAgent::new(vec![Action::Move(Port::new(0)); 5]);
//! let idler = ScriptedAgent::new(vec![]);
//! let out = Simulation::new(&g)
//!     .agent(Box::new(walker), AgentSpec::immediate(NodeId::new(0)))
//!     .agent(Box::new(idler), AgentSpec::immediate(NodeId::new(4)))
//!     .run()?;
//! assert_eq!(out.time(), Some(4));
//! # Ok::<(), rendezvous_sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod behavior;
mod engine;
mod error;
pub mod gathering;
pub mod render;
mod solo;

pub use batch::{BatchSolver, DelayOutcome, Trajectory};
pub use behavior::{Action, AgentBehavior, IdleAgent, Observation, ScriptedAgent};
pub use engine::{AgentSpec, Meeting, MeetingCondition, Outcome, Simulation, Trace};
pub use error::SimError;
pub use solo::{run_solo, SoloTrace};
