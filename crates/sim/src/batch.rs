//! The delay-batched solver: rendezvous outcomes for **every** wake-up
//! delay of one (trajectory, trajectory) pair in a single pass.
//!
//! A deterministic agent's whole walk is a fixed position array (a
//! [`Trajectory`], exported by `FlatPlan` in `rendezvous-core`). For a
//! fixed pair of trajectories on a fixed graph, the stepped engine's
//! round loop reduces to offset-shifted array comparisons: delaying the
//! second agent by `d` rounds shifts its position array `d` places to the
//! right, and the meeting round is the first index where the shifted
//! arrays agree. [`BatchSolver`] resolves meeting round, meeting node,
//! cost and edge crossings for each delay from the two arrays alone —
//! O(T + D) for a D-delay sweep instead of the engine's O(D·T) — with
//! semantics equal to [`Simulation`](crate::Simulation) by definition:
//!
//! * both agents occupy their starts from round 0; the second wakes in
//!   round `d + 1`, so its position at the end of round `r` is
//!   `positions[r − d]` (clamped to the array: asleep at `[0]`, idle at
//!   the end after exhaustion);
//! * rendezvous ⇔ equal positions at the end of a round — the first `r`
//!   with `posᴬ(r) = posᴮ(r − d)`;
//! * a crossing is a round where both moved and swapped nodes; it is
//!   counted, never a meeting;
//! * cost is both agents' edge traversals up to the meeting round (or the
//!   horizon).
//!
//! Two structural shortcuts carry the speedup. Once the second agent's
//! array is exhausted (or not yet started) its position is a constant, so
//! the scan windows clamp to O(T) total work; and if the first agent
//! visits the second's start node at round `f`, every delay `d ≥ f` has
//! the **same** O(1) outcome — the sleeper is found at round `f` — which
//! is the paper's `τ > E` observation (Propositions 2.1/2.2) turned into
//! code. The inner comparisons scan in 8-lane word chunks over dense
//! `u32` position arrays so the compiler can vectorize them.

/// One agent's precomputed walk as a structure of arrays: the node index
/// occupied after each round plus a running count of edge traversals.
///
/// `positions[r]` is the node at the end of round `r` of the walk's own
/// clock (`positions[0]` is the start); `prefix_moves[r]` counts the
/// traversals among the first `r` steps, so any cost window is a
/// subtraction and "moved in round `r`" is a prefix difference — no
/// separate action array needed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trajectory {
    positions: Vec<u32>,
    prefix_moves: Vec<u32>,
}

impl Trajectory {
    /// An empty trajectory standing at `start` (node index) forever.
    #[must_use]
    pub fn new(start: u32) -> Self {
        Trajectory {
            positions: vec![start],
            prefix_moves: vec![0],
        }
    }

    /// Appends one round: the position at the end of the round and
    /// whether the round traversed an edge.
    pub fn push(&mut self, position: u32, moved: bool) {
        let moves = self.prefix_moves.last().copied().unwrap_or(0) + u32::from(moved);
        self.positions.push(position);
        self.prefix_moves.push(moves);
    }

    /// Number of recorded rounds `T` (the walk idles at its end position
    /// afterwards).
    #[must_use]
    pub fn steps(&self) -> u64 {
        (self.positions.len() - 1) as u64
    }

    /// The start node index (`positions[0]`).
    #[must_use]
    pub fn start(&self) -> u32 {
        self.positions[0]
    }

    /// The node index occupied once the walk is exhausted.
    #[must_use]
    pub fn end(&self) -> u32 {
        *self.positions.last().expect("at least the start")
    }

    /// The node index at the end of round `round` of the walk's own
    /// clock, clamped: past the end the agent idles at [`Trajectory::end`].
    #[must_use]
    pub fn position_at(&self, round: u64) -> u32 {
        self.positions[usize::try_from(round.min(self.steps())).expect("clamped to length")]
    }

    /// Edge traversals in rounds `1..=round` of the walk's own clock
    /// (clamped past the end — idling is free).
    #[must_use]
    pub fn moves_through(&self, round: u64) -> u64 {
        u64::from(self.prefix_moves[usize::try_from(round.min(self.steps())).expect("clamped")])
    }

    /// Returns `true` if round `round` (1-based, on the walk's own
    /// clock) traversed an edge; rounds past the end never move.
    #[must_use]
    pub fn moved_in(&self, round: u64) -> bool {
        round >= 1 && round <= self.steps() && {
            let r = usize::try_from(round).expect("within length");
            self.prefix_moves[r] > self.prefix_moves[r - 1]
        }
    }

    /// The dense position array (`positions[r]` = node after round `r`).
    #[must_use]
    pub fn positions(&self) -> &[u32] {
        &self.positions
    }
}

/// Comparison lanes per scan chunk: equality over fixed 8-wide `u32`
/// windows compiles to vector compares with a movemask-style reduction.
const LANES: usize = 8;

/// Index of the first equal pair of two equal-length slices.
fn first_equal(a: &[u32], b: &[u32]) -> Option<usize> {
    debug_assert_eq!(a.len(), b.len());
    let chunks = a.len() / LANES;
    for c in 0..chunks {
        let base = c * LANES;
        let mut mask: u32 = 0;
        for lane in 0..LANES {
            mask |= u32::from(a[base + lane] == b[base + lane]) << lane;
        }
        if mask != 0 {
            return Some(base + mask.trailing_zeros() as usize);
        }
    }
    (chunks * LANES..a.len()).find(|&i| a[i] == b[i])
}

/// Index of the first element of `a` equal to the constant `v`.
fn first_equal_to(a: &[u32], v: u32) -> Option<usize> {
    let chunks = a.len() / LANES;
    for c in 0..chunks {
        let base = c * LANES;
        let mut mask: u32 = 0;
        for lane in 0..LANES {
            mask |= u32::from(a[base + lane] == v) << lane;
        }
        if mask != 0 {
            return Some(base + mask.trailing_zeros() as usize);
        }
    }
    (chunks * LANES..a.len()).find(|&i| a[i] == v)
}

/// What one delay's execution would have measured: the fields of the
/// engine's [`Outcome`](crate::Outcome) that a pair sweep folds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DelayOutcome {
    /// Global round (1-based) at whose end the agents met, `None` if they
    /// did not within the horizon. With an undelayed first agent this is
    /// exactly the paper's **time**.
    pub round: Option<u64>,
    /// Node index where they met.
    pub node: Option<u32>,
    /// Total edge traversals of both agents up to the meeting round (or
    /// the horizon).
    pub cost: u64,
    /// Rounds in which the agents crossed inside an edge (both moved and
    /// swapped nodes — never a meeting).
    pub crossings: u64,
}

/// Solves one (first trajectory, second trajectory, horizon) pair for
/// any number of second-agent delays, each in (amortized) O(T/D + 1).
///
/// The first agent wakes in round 1 and follows `a`; the second sleeps
/// through `delay` rounds at `b.start()` and then follows `b`. Equal to
/// running [`Simulation`](crate::Simulation) with the same two walks —
/// the equivalence tests below and the byte-identical experiment outputs
/// of the `--engine batched` pipeline rest on this.
#[derive(Debug)]
pub struct BatchSolver<'a> {
    a: &'a Trajectory,
    b: &'a Trajectory,
    horizon: u64,
    /// First round `1..=min(Tᴬ, horizon)` in which the first agent stands
    /// on the second's start node: every `delay ≥ first_visit` meets
    /// there, at that round, with the second agent still asleep.
    first_visit: Option<u64>,
}

impl<'a> BatchSolver<'a> {
    /// Prepares the solver for one trajectory pair under `horizon`.
    #[must_use]
    pub fn new(a: &'a Trajectory, b: &'a Trajectory, horizon: u64) -> Self {
        let upper = usize::try_from(a.steps().min(horizon)).expect("trajectory length fits");
        let first_visit =
            first_equal_to(&a.positions()[1..=upper], b.start()).map(|k| k as u64 + 1);
        BatchSolver {
            a,
            b,
            horizon,
            first_visit,
        }
    }

    /// The precomputed sleeping-partner round, if any (`first_visit`).
    #[must_use]
    pub fn first_visit(&self) -> Option<u64> {
        self.first_visit
    }

    /// The outcome of the execution in which the second agent sleeps
    /// through `delay` rounds.
    #[must_use]
    pub fn solve(&self, delay: u64) -> DelayOutcome {
        let h = self.horizon;
        // Sleeping partner: the first agent reaches the second's start
        // before it wakes — constant outcome for every such delay.
        if let Some(f) = self.first_visit {
            if delay >= f {
                return DelayOutcome {
                    round: Some(f),
                    node: Some(self.b.start()),
                    cost: self.a.moves_through(f),
                    crossings: 0,
                };
            }
        }
        // The second agent never wakes within the horizon (and the first
        // never finds it asleep, or the shortcut above would have fired).
        if delay >= h {
            return DelayOutcome {
                round: None,
                node: None,
                cost: self.a.moves_through(h),
                crossings: 0,
            };
        }
        let ta = self.a.steps();
        let bd = self.b.steps().saturating_add(delay);
        // No meeting can happen in rounds 1..=delay (that would be a
        // first-visit), and past round max(Tᴬ, Tᴮ + delay) both walks are
        // exhausted and the configuration is frozen.
        let lo = delay + 1;
        let rmax = h.min(ta.max(bd));
        let ap = self.a.positions();
        let bp = self.b.positions();
        let mut meeting: Option<u64> = None;
        // Both walks live: positions[r] against positions[r − delay].
        let live_hi = rmax.min(ta).min(bd);
        if lo <= live_hi {
            let len = usize::try_from(live_hi - lo + 1).expect("window fits");
            let ao = usize::try_from(lo).expect("round fits");
            let bo = usize::try_from(lo - delay).expect("round fits");
            meeting = first_equal(&ap[ao..ao + len], &bp[bo..bo + len]).map(|k| lo + k as u64);
        }
        // Second exhausted first: scan the first's tail against the
        // second's frozen end position (or vice versa). At most one of
        // these windows is non-empty.
        if meeting.is_none() && bd < rmax.min(ta) {
            let from = lo.max(bd + 1);
            let hi = rmax.min(ta);
            let len = usize::try_from(hi - from + 1).expect("window fits");
            let off = usize::try_from(from).expect("round fits");
            meeting = first_equal_to(&ap[off..off + len], self.b.end()).map(|k| from + k as u64);
        }
        if meeting.is_none() && ta < rmax.min(bd) {
            let from = lo.max(ta + 1);
            let hi = rmax.min(bd);
            let len = usize::try_from(hi - from + 1).expect("window fits");
            let off = usize::try_from(from - delay).expect("round fits");
            meeting = first_equal_to(&bp[off..off + len], self.a.end()).map(|k| from + k as u64);
        }
        let crossings = self.crossings_through(delay, meeting.unwrap_or(h));
        match meeting {
            Some(m) => DelayOutcome {
                round: Some(m),
                node: Some(self.a.position_at(m)),
                cost: self.a.moves_through(m) + self.b.moves_through(m - delay),
                crossings,
            },
            None => DelayOutcome {
                round: None,
                node: None,
                cost: self.a.moves_through(h) + self.b.moves_through(h - delay),
                crossings,
            },
        }
    }

    /// Crossings in rounds `delay + 1 ..= end` (the engine counts the
    /// meeting round too, before its meeting check): both agents moved
    /// and swapped nodes. Rounds where either walk is exhausted cannot
    /// cross, so the window clamps to both arrays.
    fn crossings_through(&self, delay: u64, end: u64) -> u64 {
        let hi = end
            .min(self.a.steps())
            .min(self.b.steps().saturating_add(delay));
        let ap = self.a.positions();
        let bp = self.b.positions();
        let mut crossings = 0;
        for r in delay + 1..=hi {
            let i = usize::try_from(r).expect("round fits");
            let j = usize::try_from(r - delay).expect("round fits");
            if self.a.moved_in(r)
                && self.b.moved_in(r - delay)
                && ap[i] == bp[j - 1]
                && ap[i - 1] == bp[j]
            {
                crossings += 1;
            }
        }
        crossings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_solo, Action, AgentBehavior, AgentSpec, MeetingCondition, Simulation};
    use rendezvous_graph::{generators, NodeId, Port, PortLabeledGraph};

    /// Replays a recorded solo walk — the scripted oracle counterpart of
    /// the trajectories under test.
    struct Replay {
        ports: Vec<Option<Port>>,
        cursor: usize,
    }

    impl AgentBehavior for Replay {
        fn next_action(&mut self, _o: crate::Observation) -> Action {
            let action = match self.ports.get(self.cursor) {
                Some(Some(p)) => Action::Move(*p),
                _ => Action::Stay,
            };
            self.cursor += 1;
            action
        }
    }

    /// Builds the trajectory of a port script from `start` by running it
    /// solo, so trajectory and oracle walk are the same by construction.
    fn trajectory_of(g: &PortLabeledGraph, start: NodeId, ports: &[Option<Port>]) -> Trajectory {
        let mut walker = Replay {
            ports: ports.to_vec(),
            cursor: 0,
        };
        let trace = run_solo(g, &mut walker, start, ports.len() as u64).unwrap();
        let mut t = Trajectory::new(trace.positions[0].index() as u32);
        for (r, a) in trace.actions.iter().enumerate() {
            t.push(trace.positions[r + 1].index() as u32, a.is_move());
        }
        t
    }

    /// Exhaustive oracle: for every delay in `0..=max_delay`, the solver
    /// must agree with the stepped engine on meeting round, meeting node,
    /// cost and crossings.
    fn assert_matches_engine(
        g: &PortLabeledGraph,
        start_a: NodeId,
        ports_a: &[Option<Port>],
        start_b: NodeId,
        ports_b: &[Option<Port>],
        horizon: u64,
        max_delay: u64,
    ) {
        let ta = trajectory_of(g, start_a, ports_a);
        let tb = trajectory_of(g, start_b, ports_b);
        let solver = BatchSolver::new(&ta, &tb, horizon);
        for delay in 0..=max_delay {
            let engine = Simulation::new(g)
                .agent(
                    Box::new(Replay {
                        ports: ports_a.to_vec(),
                        cursor: 0,
                    }),
                    AgentSpec::immediate(start_a),
                )
                .agent(
                    Box::new(Replay {
                        ports: ports_b.to_vec(),
                        cursor: 0,
                    }),
                    AgentSpec::delayed(start_b, delay),
                )
                .max_rounds(horizon)
                .meeting_condition(MeetingCondition::FirstPair)
                .run()
                .unwrap();
            let batched = solver.solve(delay);
            assert_eq!(
                batched.round,
                engine.meeting().map(|m| m.round),
                "meeting round diverged at delay {delay}"
            );
            assert_eq!(
                batched.node,
                engine.meeting().map(|m| m.node.index() as u32),
                "meeting node diverged at delay {delay}"
            );
            assert_eq!(
                batched.cost,
                engine.cost(),
                "cost diverged at delay {delay}"
            );
            assert_eq!(
                batched.crossings,
                engine.crossings(),
                "crossings diverged at delay {delay}"
            );
        }
    }

    fn cw(steps: usize) -> Vec<Option<Port>> {
        vec![Some(Port::new(0)); steps]
    }

    fn ccw(steps: usize) -> Vec<Option<Port>> {
        vec![Some(Port::new(1)); steps]
    }

    #[test]
    fn walker_vs_sitter_matches_engine_for_all_delays() {
        let g = generators::oriented_ring(7).unwrap();
        // Sitter: delays beyond the first visit all hit the O(1) path.
        assert_matches_engine(&g, NodeId::new(0), &cw(6), NodeId::new(4), &[], 40, 45);
    }

    #[test]
    fn opposing_walkers_match_engine_including_crossings() {
        let g = generators::oriented_ring(6).unwrap();
        // cw vs ccw from adjacent nodes: crossings guaranteed.
        assert_matches_engine(
            &g,
            NodeId::new(0),
            &cw(12),
            NodeId::new(1),
            &ccw(12),
            30,
            32,
        );
        // And from opposite nodes, where they meet head-on.
        assert_matches_engine(
            &g,
            NodeId::new(0),
            &cw(12),
            NodeId::new(3),
            &ccw(12),
            30,
            32,
        );
    }

    #[test]
    fn stop_and_go_scripts_match_engine() {
        let g = generators::oriented_ring(8).unwrap();
        // Irregular scripts: moves interleaved with stays, different
        // lengths, so every clamping window gets exercised.
        let a: Vec<Option<Port>> = vec![
            Some(Port::new(0)),
            None,
            Some(Port::new(0)),
            Some(Port::new(0)),
            None,
            None,
            Some(Port::new(1)),
            Some(Port::new(0)),
            Some(Port::new(0)),
        ];
        let b: Vec<Option<Port>> = vec![
            None,
            Some(Port::new(1)),
            None,
            Some(Port::new(1)),
            Some(Port::new(1)),
        ];
        assert_matches_engine(&g, NodeId::new(2), &a, NodeId::new(6), &b, 25, 30);
    }

    #[test]
    fn delays_past_the_horizon_freeze_the_second_agent() {
        let g = generators::oriented_ring(5).unwrap();
        // Horizon tighter than both scripts, delays far beyond it.
        assert_matches_engine(&g, NodeId::new(0), &cw(3), NodeId::new(3), &ccw(9), 4, 12);
    }

    #[test]
    fn zero_horizon_executes_nothing() {
        let g = generators::oriented_ring(4).unwrap();
        let ta = trajectory_of(&g, NodeId::new(0), &cw(3));
        let tb = trajectory_of(&g, NodeId::new(2), &cw(3));
        let solver = BatchSolver::new(&ta, &tb, 0);
        for delay in [0, 1, 7] {
            let out = solver.solve(delay);
            assert_eq!(out.round, None);
            assert_eq!(out.cost, 0);
            assert_eq!(out.crossings, 0);
        }
    }

    #[test]
    fn trajectory_accounting() {
        let g = generators::oriented_ring(5).unwrap();
        let t = trajectory_of(
            &g,
            NodeId::new(1),
            &[Some(Port::new(0)), None, Some(Port::new(0))],
        );
        assert_eq!(t.steps(), 3);
        assert_eq!(t.start(), 1);
        assert_eq!(t.end(), 3);
        assert_eq!(t.positions(), &[1, 2, 2, 3]);
        assert_eq!(t.moves_through(0), 0);
        assert_eq!(t.moves_through(2), 1);
        assert_eq!(t.moves_through(99), 2, "clamped past the end");
        assert!(t.moved_in(1) && !t.moved_in(2) && t.moved_in(3));
        assert!(!t.moved_in(0) && !t.moved_in(4));
        assert_eq!(t.position_at(2), 2);
        assert_eq!(t.position_at(50), 3, "idles at the end");
    }

    #[test]
    fn word_scan_agrees_with_the_naive_scan() {
        // Lengths around the 8-lane chunk boundary, match positions in
        // every lane, plus the no-match case.
        for len in 0..20usize {
            for hit in 0..=len {
                let a: Vec<u32> = (0..len as u32).collect();
                let mut b: Vec<u32> = (100..100 + len as u32).collect();
                if hit < len {
                    b[hit] = hit as u32;
                }
                let expected = (hit < len).then_some(hit);
                assert_eq!(first_equal(&a, &b), expected, "len {len}, hit {hit}");
                let mut c = vec![77u32; len];
                if hit < len {
                    c[hit] = 5;
                }
                assert_eq!(first_equal_to(&c, 5), expected, "len {len}, hit {hit}");
            }
        }
    }
}
