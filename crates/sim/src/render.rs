//! ASCII space-time diagrams of executions — invaluable when debugging
//! rendezvous schedules and when explaining the algorithms in examples.

use crate::Trace;
use std::fmt::Write as _;

/// Renders a recorded [`Trace`] as a space-time diagram: one row per round,
/// one column per node; agents shown as `A`, `B`, `C`…, collisions as `*`.
///
/// Rows are sub-sampled to at most `max_rows` (always keeping the first
/// and last round) so long executions stay readable.
///
/// # Examples
///
/// ```
/// use rendezvous_graph::{generators, NodeId, Port};
/// use rendezvous_sim::{render, Action, AgentSpec, ScriptedAgent, Simulation};
///
/// let g = generators::oriented_ring(5).unwrap();
/// let walker = ScriptedAgent::new(vec![Action::Move(Port::new(0)); 4]);
/// let idler = ScriptedAgent::new(vec![]);
/// let out = Simulation::new(&g)
///     .agent(Box::new(walker), AgentSpec::immediate(NodeId::new(0)))
///     .agent(Box::new(idler), AgentSpec::immediate(NodeId::new(3)))
///     .record_trace(true)
///     .run()
///     .unwrap();
/// let art = render::space_time(out.trace().unwrap(), 5, 10);
/// assert!(art.contains('A'));
/// assert!(art.contains('*')); // the meeting
/// ```
#[must_use]
pub fn space_time(trace: &Trace, node_count: usize, max_rows: usize) -> String {
    let rounds = trace.positions.first().map_or(0, Vec::len);
    let agents = trace.positions.len();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "round  {}",
        (0..node_count)
            .map(|v| format!("{v:>3}"))
            .collect::<String>()
    );
    let step = rounds.div_ceil(max_rows.max(1)).max(1);
    let mut rows: Vec<usize> = (0..rounds).step_by(step).collect();
    if rows.last() != Some(&(rounds - 1)) && rounds > 0 {
        rows.push(rounds - 1);
    }
    for r in rows {
        let mut cells = vec!["  .".to_string(); node_count];
        for a in 0..agents {
            let pos = trace.positions[a][r].index();
            let symbol = char::from(b'A' + (a % 26) as u8);
            if cells[pos].ends_with('.') {
                cells[pos] = format!("  {symbol}");
            } else {
                cells[pos] = "  *".to_string();
            }
        }
        let _ = writeln!(out, "{r:>5}  {}", cells.concat());
    }
    out
}

/// One-line summary of an agent's action history: `>` clockwise-ish move
/// (port 0), `<` other move, `.` stay. Useful to eyeball schedules.
#[must_use]
pub fn action_ribbon(trace: &Trace, agent: usize) -> String {
    trace.actions[agent]
        .iter()
        .map(|a| match a {
            crate::Action::Stay => '.',
            crate::Action::Move(p) if p.index() == 0 => '>',
            crate::Action::Move(_) => '<',
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Action, AgentSpec, ScriptedAgent, Simulation};
    use rendezvous_graph::{generators, NodeId, Port};

    fn traced() -> crate::Outcome {
        let g = generators::oriented_ring(6).unwrap();
        let walker = ScriptedAgent::new(vec![Action::Move(Port::new(0)); 5]);
        let idler = ScriptedAgent::new(vec![]);
        Simulation::new(&g)
            .agent(Box::new(walker), AgentSpec::immediate(NodeId::new(0)))
            .agent(Box::new(idler), AgentSpec::immediate(NodeId::new(4)))
            .record_trace(true)
            .run()
            .unwrap()
    }

    #[test]
    fn space_time_shows_both_agents_and_meeting() {
        let out = traced();
        let art = space_time(out.trace().unwrap(), 6, 50);
        assert!(art.contains('A'));
        assert!(art.contains('B'));
        assert!(art.contains('*'));
        // header + one row per recorded round (5 entries: rounds 0..=4)
        assert!(art.lines().count() >= 5);
    }

    #[test]
    fn subsampling_keeps_first_and_last() {
        let out = traced();
        let art = space_time(out.trace().unwrap(), 6, 2);
        let first = art.lines().nth(1).unwrap();
        assert!(first.trim_start().starts_with('0'));
        assert!(art.lines().count() <= 5);
    }

    #[test]
    fn ribbons_reflect_actions() {
        let out = traced();
        let t = out.trace().unwrap();
        assert_eq!(action_ribbon(t, 0), ">>>>");
        assert_eq!(action_ribbon(t, 1), "....");
    }
}
