//! The synchronous-round execution engine.
//!
//! Semantics, straight from §1.2 of the paper:
//!
//! * agents occupy their start nodes **from the beginning**, even before
//!   their wake-up round (the adversary may delay wake-ups; a sleeping agent
//!   can be found by the other one);
//! * all awake agents decide simultaneously each round, then all moves are
//!   applied simultaneously;
//! * rendezvous ⇔ two agents occupy the same node at the end of a round;
//! * "when agents cross each other on an edge, traversing it simultaneously
//!   in different directions, they do not notice this fact" — crossings are
//!   counted but are **not** meetings;
//! * upon meeting, both agents stop.

use crate::{Action, AgentBehavior, Observation, SimError};
use rendezvous_graph::{NodeId, Port, PortLabeledGraph};
use std::collections::HashMap;

/// Fleets up to this size use the direct quadratic scans in the engine's
/// round loop; larger fleets use hash-based occupancy and crossing checks.
/// At small `k` the quadratic scan is branch-cheap and allocation-free,
/// which benchmarks faster than hashing.
const SMALL_FLEET: usize = 8;

/// Crossing count for one round by pairwise scan: agents `i < j` crossed
/// iff both moved and swapped nodes (on a simple graph that means the same
/// edge in opposite directions).
fn count_crossings_quadratic(previous: &[NodeId], positions: &[NodeId], actions: &[Action]) -> u64 {
    let k = positions.len();
    let mut crossings = 0;
    for i in 0..k {
        if !actions[i].is_move() {
            continue;
        }
        for j in (i + 1)..k {
            if actions[j].is_move() && positions[i] == previous[j] && positions[j] == previous[i] {
                crossings += 1;
            }
        }
    }
    crossings
}

/// Crossing count for one round in O(k): every mover contributes its
/// `(from, to)` arc to a multiset; a crossing pair is a mover whose
/// reversed arc is present, so the total is half the sum of reverse-arc
/// multiplicities. Agrees exactly with the quadratic scan.
fn count_crossings_hashed(
    previous: &[NodeId],
    positions: &[NodeId],
    actions: &[Action],
    // analyze: allow(d1) — scratch multiset: entry/get only, never iterated; the
    // crossing count summed from it is order-independent
    move_pairs: &mut HashMap<(NodeId, NodeId), u32>,
) -> u64 {
    move_pairs.clear();
    for i in 0..positions.len() {
        if actions[i].is_move() {
            *move_pairs.entry((previous[i], positions[i])).or_insert(0) += 1;
        }
    }
    let mut doubled: u64 = 0;
    for i in 0..positions.len() {
        if actions[i].is_move() {
            if let Some(&reverse) = move_pairs.get(&(positions[i], previous[i])) {
                doubled += u64::from(reverse);
            }
        }
    }
    debug_assert_eq!(doubled % 2, 0, "crossings pair up");
    doubled / 2
}

/// The node of the first agent (lowest index) that shares its node with
/// any other agent — the `FirstPair` meeting witness, by pairwise scan.
fn first_shared_node_quadratic(positions: &[NodeId]) -> Option<NodeId> {
    let k = positions.len();
    for i in 0..k {
        for j in (i + 1)..k {
            if positions[i] == positions[j] {
                return Some(positions[i]);
            }
        }
    }
    None
}

/// Same witness in O(k): count node occupancy, then return the position of
/// the lowest-indexed agent standing on a node of occupancy ≥ 2. Matches
/// the quadratic scan's choice exactly (both pick the smallest `i` that
/// shares its node).
fn first_shared_node_hashed(
    positions: &[NodeId],
    // analyze: allow(d1) — scratch occupancy counts: point lookups only; the witness
    // is chosen by scanning `positions` in global agent order, not by map order
    occupancy: &mut HashMap<NodeId, u32>,
) -> Option<NodeId> {
    occupancy.clear();
    for &p in positions {
        *occupancy.entry(p).or_insert(0) += 1;
    }
    if occupancy.len() == positions.len() {
        return None;
    }
    positions.iter().find(|p| occupancy[p] >= 2).copied()
}

/// Placement of one agent: where it starts and when it wakes up.
///
/// Wake-up rounds are 1-based global round numbers chosen by the adversary;
/// the agent's own clock starts at its wake-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AgentSpec {
    /// Starting node (occupied from round 0 onward).
    pub start: NodeId,
    /// First global round in which the agent acts (1-based).
    pub wake_round: u64,
}

impl AgentSpec {
    /// Agent starting at `start`, awake from round 1 (no delay).
    #[must_use]
    pub fn immediate(start: NodeId) -> Self {
        AgentSpec {
            start,
            wake_round: 1,
        }
    }

    /// Agent starting at `start`, woken after `delay` rounds (wake round
    /// `delay + 1`).
    #[must_use]
    pub fn delayed(start: NodeId, delay: u64) -> Self {
        AgentSpec {
            start,
            wake_round: delay + 1,
        }
    }
}

/// When is the task considered solved?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MeetingCondition {
    /// Two agents at the same node (the rendezvous problem; for two agents
    /// the two conditions coincide).
    #[default]
    FirstPair,
    /// All agents at the same node (the *gathering* generalization).
    AllTogether,
}

/// A successful meeting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Meeting {
    /// Global round (1-based) at whose end the meeting happened.
    pub round: u64,
    /// Node where the agents met.
    pub node: NodeId,
}

/// Full per-round history of an execution (optional, for analysis).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// `positions[agent][r]` = node occupied at the end of round `r`
    /// (`r = 0` is the initial configuration).
    pub positions: Vec<Vec<NodeId>>,
    /// `actions[agent][r]` = action taken in round `r + 1`. Sleeping agents
    /// record [`Action::Stay`].
    pub actions: Vec<Vec<Action>>,
}

/// The result of running a simulation.
#[derive(Debug, Clone)]
pub struct Outcome {
    meeting: Option<Meeting>,
    rounds_executed: u64,
    per_agent_cost: Vec<u64>,
    per_agent_cost_late: Vec<u64>,
    crossings: u64,
    wake_rounds: Vec<u64>,
    trace: Option<Trace>,
}

impl Outcome {
    /// The meeting, if one occurred within the round budget.
    #[must_use]
    pub fn meeting(&self) -> Option<Meeting> {
        self.meeting
    }

    /// Returns `true` if the agents met.
    #[must_use]
    pub fn met(&self) -> bool {
        self.meeting.is_some()
    }

    /// Number of rounds actually simulated.
    #[must_use]
    pub fn rounds_executed(&self) -> u64 {
        self.rounds_executed
    }

    /// Edge traversals by each agent (configuration order), up to and
    /// including the meeting round.
    #[must_use]
    pub fn per_agent_cost(&self) -> &[u64] {
        &self.per_agent_cost
    }

    /// The paper's **cost**: total edge traversals by all agents until the
    /// meeting (or until the round budget, if no meeting).
    #[must_use]
    pub fn cost(&self) -> u64 {
        self.per_agent_cost.iter().sum()
    }

    /// The paper's **time**: rounds from the start of the *earlier* agent
    /// until the meeting. `None` if no meeting occurred.
    #[must_use]
    pub fn time(&self) -> Option<u64> {
        let earliest = self.wake_rounds.iter().min().copied()?;
        self.meeting.map(|m| m.round - (earliest - 1))
    }

    /// Alternative accounting (paper Conclusion): rounds from the wake-up
    /// of the *later* agent until the meeting. If the meeting happened
    /// before the later agent woke (it was found asleep), this is 0.
    #[must_use]
    pub fn time_from_later(&self) -> Option<u64> {
        let latest = self.wake_rounds.iter().max().copied()?;
        self.meeting.map(|m| m.round.saturating_sub(latest - 1))
    }

    /// Alternative accounting (paper Conclusion): edge traversals made in
    /// or after the later agent's wake-up round. The Conclusion argues this
    /// is the *less* natural cost measure ("ignoring the cost incurred by
    /// the earlier agent … is unrealistic"), but both are implemented so
    /// the claim "our complexities do not change in this model" can be
    /// checked numerically.
    #[must_use]
    pub fn cost_from_later(&self) -> u64 {
        self.per_agent_cost_late.iter().sum()
    }

    /// How often agents crossed each other inside an edge (never a meeting).
    #[must_use]
    pub fn crossings(&self) -> u64 {
        self.crossings
    }

    /// The recorded trace, if tracing was enabled.
    #[must_use]
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }
}

/// A configured multi-agent simulation. Use [`Simulation::new`], add agents,
/// then [`Simulation::run`].
///
/// # Examples
///
/// ```
/// use rendezvous_graph::{generators, NodeId, Port};
/// use rendezvous_sim::{Action, AgentSpec, ScriptedAgent, Simulation};
///
/// let g = generators::oriented_ring(5).unwrap();
/// // One agent walks clockwise; the other sits still.
/// let walker = ScriptedAgent::new(vec![Action::Move(Port::new(0)); 4]);
/// let sitter = ScriptedAgent::new(vec![]);
/// let outcome = Simulation::new(&g)
///     .agent(Box::new(walker), AgentSpec::immediate(NodeId::new(0)))
///     .agent(Box::new(sitter), AgentSpec::immediate(NodeId::new(2)))
///     .max_rounds(100)
///     .run()
///     .unwrap();
/// assert_eq!(outcome.time(), Some(2));
/// assert_eq!(outcome.cost(), 2);
/// ```
pub struct Simulation<'a> {
    graph: &'a PortLabeledGraph,
    agents: Vec<(Box<dyn AgentBehavior + 'a>, AgentSpec)>,
    max_rounds: u64,
    record_trace: bool,
    condition: MeetingCondition,
}

impl std::fmt::Debug for Simulation<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("agents", &self.agents.len())
            .field("max_rounds", &self.max_rounds)
            .field("record_trace", &self.record_trace)
            .field("condition", &self.condition)
            .finish_non_exhaustive()
    }
}

impl<'a> Simulation<'a> {
    /// Creates an empty simulation on `graph`.
    #[must_use]
    pub fn new(graph: &'a PortLabeledGraph) -> Self {
        Simulation {
            graph,
            agents: Vec::new(),
            max_rounds: 1_000_000,
            record_trace: false,
            condition: MeetingCondition::FirstPair,
        }
    }

    /// Adds an agent.
    #[must_use]
    pub fn agent(mut self, behavior: Box<dyn AgentBehavior + 'a>, spec: AgentSpec) -> Self {
        self.agents.push((behavior, spec));
        self
    }

    /// Caps the number of simulated rounds (default: 1,000,000).
    #[must_use]
    pub fn max_rounds(mut self, rounds: u64) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Enables full trace recording.
    #[must_use]
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Sets the meeting condition (default: [`MeetingCondition::FirstPair`]).
    #[must_use]
    pub fn meeting_condition(mut self, condition: MeetingCondition) -> Self {
        self.condition = condition;
        self
    }

    /// Runs the simulation to meeting or round budget.
    ///
    /// # Errors
    ///
    /// * [`SimError::TooFewAgents`], [`SimError::StartsNotDistinct`],
    ///   [`SimError::StartOutOfRange`], [`SimError::InvalidWakeRound`],
    ///   [`SimError::NotConnected`] — configuration errors;
    /// * [`SimError::InvalidMove`] if an agent emits a port that does not
    ///   exist at its current node (an algorithm bug, surfaced loudly).
    pub fn run(self) -> Result<Outcome, SimError> {
        let Simulation {
            graph,
            mut agents,
            max_rounds,
            record_trace,
            condition,
        } = self;
        let k = agents.len();
        if k < 2 {
            return Err(SimError::TooFewAgents { got: k });
        }
        for (_, spec) in &agents {
            if !graph.contains(spec.start) {
                return Err(SimError::StartOutOfRange { node: spec.start });
            }
            if spec.wake_round == 0 {
                return Err(SimError::InvalidWakeRound);
            }
        }
        for i in 0..k {
            for j in (i + 1)..k {
                if agents[i].1.start == agents[j].1.start {
                    return Err(SimError::StartsNotDistinct {
                        node: agents[i].1.start,
                    });
                }
            }
        }
        if !rendezvous_graph::analysis::is_connected(graph) {
            return Err(SimError::NotConnected);
        }

        let wake_rounds: Vec<u64> = agents.iter().map(|(_, s)| s.wake_round).collect();
        let latest_wake = wake_rounds.iter().max().copied().unwrap_or(1);
        let mut positions: Vec<NodeId> = agents.iter().map(|(_, s)| s.start).collect();
        let mut entry_ports: Vec<Option<Port>> = vec![None; k];
        let mut per_agent_cost = vec![0u64; k];
        let mut per_agent_cost_late = vec![0u64; k];
        let mut crossings = 0u64;
        let mut trace = record_trace.then(|| Trace {
            positions: positions.iter().map(|&p| vec![p]).collect(),
            actions: vec![Vec::new(); k],
        });

        // Hot-loop buffers, allocated once and reused every round. Small
        // agent counts (the common two-agent case) keep the quadratic
        // scans, which beat hashing at that size; larger fleets switch to
        // O(k) occupancy/crossing maps.
        let use_maps = k > SMALL_FLEET;
        let mut previous: Vec<NodeId> = positions.clone();
        let mut actions: Vec<Action> = vec![Action::Stay; k];
        // analyze: allow(d1) — reusable scratch buffers for the helpers above; both are
        // cleared per round and never iterated
        let mut occupancy: HashMap<NodeId, u32> = HashMap::new();
        // analyze: allow(d1) — same scratch-buffer discipline as `occupancy`
        let mut move_pairs: HashMap<(NodeId, NodeId), u32> = HashMap::new();

        let mut meeting = None;
        let mut rounds_executed = 0;
        for round in 1..=max_rounds {
            rounds_executed = round;
            // Decision phase: all awake agents observe and decide.
            actions.fill(Action::Stay);
            for (i, (behavior, spec)) in agents.iter_mut().enumerate() {
                if round >= spec.wake_round {
                    let obs = Observation {
                        local_round: round - spec.wake_round,
                        degree: graph.degree(positions[i]),
                        entry_port: entry_ports[i],
                    };
                    let a = behavior.next_action(obs);
                    if let Action::Move(p) = a {
                        if p.index() >= graph.degree(positions[i]) {
                            return Err(SimError::InvalidMove {
                                agent: i,
                                round,
                                port: p,
                                degree: graph.degree(positions[i]),
                            });
                        }
                    }
                    actions[i] = a;
                }
            }
            // Move phase: apply all moves simultaneously.
            previous.copy_from_slice(&positions);
            for i in 0..k {
                match actions[i] {
                    Action::Stay => entry_ports[i] = None,
                    Action::Move(p) => {
                        let t = graph.traverse(positions[i], p)?;
                        positions[i] = t.target;
                        entry_ports[i] = Some(t.entry_port);
                        per_agent_cost[i] += 1;
                        if round >= latest_wake {
                            per_agent_cost_late[i] += 1;
                        }
                    }
                }
            }
            // Crossing detection (simple graph: a swap means same edge).
            crossings += if use_maps {
                count_crossings_hashed(&previous, &positions, &actions, &mut move_pairs)
            } else {
                count_crossings_quadratic(&previous, &positions, &actions)
            };
            if let Some(t) = trace.as_mut() {
                for i in 0..k {
                    t.positions[i].push(positions[i]);
                    t.actions[i].push(actions[i]);
                }
            }
            // Meeting check at end of round.
            let met_now = match condition {
                MeetingCondition::FirstPair if use_maps => {
                    first_shared_node_hashed(&positions, &mut occupancy)
                }
                MeetingCondition::FirstPair => first_shared_node_quadratic(&positions),
                MeetingCondition::AllTogether => {
                    if positions.iter().all(|&p| p == positions[0]) {
                        Some(positions[0])
                    } else {
                        None
                    }
                }
            };
            if let Some(node) = met_now {
                meeting = Some(Meeting { round, node });
                break;
            }
        }

        Ok(Outcome {
            meeting,
            rounds_executed,
            per_agent_cost,
            per_agent_cost_late,
            crossings,
            wake_rounds,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IdleAgent, ScriptedAgent};
    use rendezvous_graph::generators;

    fn cw(steps: usize) -> Box<ScriptedAgent> {
        Box::new(ScriptedAgent::new(vec![Action::Move(Port::new(0)); steps]))
    }
    fn ccw(steps: usize) -> Box<ScriptedAgent> {
        Box::new(ScriptedAgent::new(vec![Action::Move(Port::new(1)); steps]))
    }

    #[test]
    fn walker_meets_sitter() {
        let g = generators::oriented_ring(6).unwrap();
        let out = Simulation::new(&g)
            .agent(cw(5), AgentSpec::immediate(NodeId::new(0)))
            .agent(Box::new(IdleAgent), AgentSpec::immediate(NodeId::new(3)))
            .run()
            .unwrap();
        let m = out.meeting().unwrap();
        assert_eq!(m.round, 3);
        assert_eq!(m.node, NodeId::new(3));
        assert_eq!(out.time(), Some(3));
        assert_eq!(out.cost(), 3);
        assert_eq!(out.per_agent_cost(), &[3, 0]);
    }

    #[test]
    fn crossing_on_an_edge_is_not_a_meeting() {
        // Two adjacent agents walk toward each other: they swap nodes
        // through the same edge and must NOT meet that round.
        let g = generators::oriented_ring(4).unwrap();
        let out = Simulation::new(&g)
            .agent(cw(8), AgentSpec::immediate(NodeId::new(0)))
            .agent(ccw(8), AgentSpec::immediate(NodeId::new(1)))
            .max_rounds(8)
            .run()
            .unwrap();
        assert!(out.crossings() >= 1);
        // After the swap they keep walking in opposite directions around a
        // 4-ring: positions after round r are (r mod 4) and (1 - r mod 4);
        // they coincide only when 2r ≡ 1 (mod 4): never. No meeting.
        assert!(!out.met());
    }

    #[test]
    fn simultaneous_arrival_is_a_meeting() {
        // Agents two apart walk toward each other: both arrive at the
        // middle node in round 1.
        let g = generators::oriented_ring(6).unwrap();
        let out = Simulation::new(&g)
            .agent(cw(3), AgentSpec::immediate(NodeId::new(0)))
            .agent(ccw(3), AgentSpec::immediate(NodeId::new(2)))
            .run()
            .unwrap();
        let m = out.meeting().unwrap();
        assert_eq!(m.round, 1);
        assert_eq!(m.node, NodeId::new(1));
        assert_eq!(out.cost(), 2); // both traversals up to the meeting count
    }

    #[test]
    fn sleeping_agent_can_be_found() {
        let g = generators::oriented_ring(5).unwrap();
        let out = Simulation::new(&g)
            .agent(cw(4), AgentSpec::immediate(NodeId::new(0)))
            .agent(cw(4), AgentSpec::delayed(NodeId::new(2), 1_000))
            .run()
            .unwrap();
        assert_eq!(out.meeting().unwrap().round, 2);
        assert_eq!(out.time(), Some(2));
        // The later agent never woke: found asleep.
        assert_eq!(out.time_from_later(), Some(0));
        assert_eq!(out.per_agent_cost(), &[2, 0]);
    }

    #[test]
    fn delayed_wake_shifts_local_clock() {
        // An agent woken at round 3 executes its script from round 3 on.
        let g = generators::oriented_ring(5).unwrap();
        let out = Simulation::new(&g)
            .agent(Box::new(IdleAgent), AgentSpec::immediate(NodeId::new(2)))
            .agent(cw(4), AgentSpec::delayed(NodeId::new(0), 2))
            .run()
            .unwrap();
        // Walker starts moving in round 3, reaches node 2 in round 3+1.
        assert_eq!(out.meeting().unwrap().round, 4);
        assert_eq!(out.time(), Some(4));
        assert_eq!(out.time_from_later(), Some(2));
    }

    #[test]
    fn timeout_returns_no_meeting() {
        let g = generators::oriented_ring(5).unwrap();
        let out = Simulation::new(&g)
            .agent(Box::new(IdleAgent), AgentSpec::immediate(NodeId::new(0)))
            .agent(Box::new(IdleAgent), AgentSpec::immediate(NodeId::new(2)))
            .max_rounds(10)
            .run()
            .unwrap();
        assert!(!out.met());
        assert_eq!(out.time(), None);
        assert_eq!(out.rounds_executed(), 10);
    }

    #[test]
    fn invalid_move_is_surfaced() {
        let g = generators::path(3).unwrap();
        let bad = ScriptedAgent::new(vec![Action::Move(Port::new(7))]);
        let err = Simulation::new(&g)
            .agent(Box::new(bad), AgentSpec::immediate(NodeId::new(0)))
            .agent(Box::new(IdleAgent), AgentSpec::immediate(NodeId::new(2)))
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidMove { agent: 0, .. }));
    }

    #[test]
    fn configuration_errors() {
        let g = generators::oriented_ring(4).unwrap();
        let err = Simulation::new(&g)
            .agent(Box::new(IdleAgent), AgentSpec::immediate(NodeId::new(1)))
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::TooFewAgents { got: 1 }));

        let err = Simulation::new(&g)
            .agent(Box::new(IdleAgent), AgentSpec::immediate(NodeId::new(1)))
            .agent(Box::new(IdleAgent), AgentSpec::immediate(NodeId::new(1)))
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::StartsNotDistinct { .. }));

        let err = Simulation::new(&g)
            .agent(Box::new(IdleAgent), AgentSpec::immediate(NodeId::new(9)))
            .agent(Box::new(IdleAgent), AgentSpec::immediate(NodeId::new(1)))
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::StartOutOfRange { .. }));

        let err = Simulation::new(&g)
            .agent(
                Box::new(IdleAgent),
                AgentSpec {
                    start: NodeId::new(0),
                    wake_round: 0,
                },
            )
            .agent(Box::new(IdleAgent), AgentSpec::immediate(NodeId::new(1)))
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidWakeRound));
    }

    #[test]
    fn disconnected_graph_rejected() {
        let g = rendezvous_graph::GraphBuilder::new(2).build().unwrap();
        let err = Simulation::new(&g)
            .agent(Box::new(IdleAgent), AgentSpec::immediate(NodeId::new(0)))
            .agent(Box::new(IdleAgent), AgentSpec::immediate(NodeId::new(1)))
            .run()
            .unwrap_err();
        assert!(matches!(err, SimError::NotConnected));
    }

    #[test]
    fn trace_records_positions_and_actions() {
        let g = generators::oriented_ring(5).unwrap();
        let out = Simulation::new(&g)
            .agent(cw(2), AgentSpec::immediate(NodeId::new(0)))
            .agent(Box::new(IdleAgent), AgentSpec::immediate(NodeId::new(2)))
            .record_trace(true)
            .run()
            .unwrap();
        let t = out.trace().unwrap();
        assert_eq!(
            t.positions[0],
            vec![NodeId::new(0), NodeId::new(1), NodeId::new(2)]
        );
        assert_eq!(t.actions[0].len(), 2);
        assert_eq!(t.positions[1], vec![NodeId::new(2); 3]);
    }

    #[test]
    fn hashed_scans_agree_with_quadratic_scans() {
        // Deterministic pseudo-random configurations over few nodes force
        // plenty of collisions, swaps and stays.
        let mut state = 0x0123_4567_89AB_CDEF_u64;
        let mut next = move |m: u64| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            (state >> 33) % m
        };
        let mut occupancy = HashMap::new();
        let mut move_pairs = HashMap::new();
        for _ in 0..500 {
            let k = 2 + next(14) as usize;
            let previous: Vec<NodeId> = (0..k).map(|_| NodeId::new(next(6) as usize)).collect();
            let mut positions = previous.clone();
            let actions: Vec<Action> = (0..k)
                .map(|i| {
                    if next(2) == 0 {
                        Action::Stay
                    } else {
                        // "Move" to any other node; port value is irrelevant
                        // to the scans under test.
                        positions[i] =
                            NodeId::new(((previous[i].index() as u64 + 1 + next(5)) % 6) as usize);
                        Action::Move(Port::new(0))
                    }
                })
                .collect();
            assert_eq!(
                count_crossings_quadratic(&previous, &positions, &actions),
                count_crossings_hashed(&previous, &positions, &actions, &mut move_pairs),
            );
            assert_eq!(
                first_shared_node_quadratic(&positions),
                first_shared_node_hashed(&positions, &mut occupancy),
            );
        }
    }

    #[test]
    fn large_fleet_meeting_uses_hashed_path_with_same_semantics() {
        // 12 agents (> SMALL_FLEET): two walkers converge while ten idlers
        // sit elsewhere. The meeting must be found by the occupancy map and
        // reported at the earliest agent's node, exactly like the small-k
        // path.
        let g = generators::oriented_ring(32).unwrap();
        let mut sim = Simulation::new(&g)
            .agent(cw(8), AgentSpec::immediate(NodeId::new(0)))
            .agent(Box::new(IdleAgent), AgentSpec::immediate(NodeId::new(3)));
        for i in 0..10 {
            sim = sim.agent(
                Box::new(IdleAgent),
                AgentSpec::immediate(NodeId::new(10 + i)),
            );
        }
        let out = sim.run().unwrap();
        let m = out.meeting().unwrap();
        assert_eq!(m.round, 3);
        assert_eq!(m.node, NodeId::new(3));
        assert_eq!(out.cost(), 3);
    }

    #[test]
    fn large_fleet_crossings_counted_by_hashed_path() {
        // Two adjacent walkers swap through one edge while ten idlers pad
        // the fleet past SMALL_FLEET.
        let g = generators::oriented_ring(32).unwrap();
        let mut sim = Simulation::new(&g)
            .agent(cw(4), AgentSpec::immediate(NodeId::new(0)))
            .agent(ccw(4), AgentSpec::immediate(NodeId::new(1)))
            .max_rounds(4);
        for i in 0..10 {
            sim = sim.agent(
                Box::new(IdleAgent),
                AgentSpec::immediate(NodeId::new(10 + i)),
            );
        }
        let out = sim.run().unwrap();
        assert!(out.crossings() >= 1, "the swap must be counted");
    }

    #[test]
    fn gathering_three_agents_all_together() {
        let g = generators::oriented_ring(6).unwrap();
        // Two walkers converge on the idle agent at node 3.
        let out = Simulation::new(&g)
            .agent(cw(6), AgentSpec::immediate(NodeId::new(0)))
            .agent(cw(6), AgentSpec::immediate(NodeId::new(1)))
            .agent(Box::new(IdleAgent), AgentSpec::immediate(NodeId::new(3)))
            .meeting_condition(MeetingCondition::AllTogether)
            .run()
            .unwrap();
        // Walker from 1 reaches 3 in round 2 but walker from 0 arrives in
        // round 3; all-together can only happen when the walkers collide...
        // walker0 is always one behind walker1, so they never coincide:
        // no gathering within budget? No wait: walker1 reaches 3 at round 2
        // and *stops only on gathering*, keeps walking. Let's just check the
        // FirstPair variant differs:
        assert!(!out.met() || out.meeting().unwrap().round >= 2);
        let out2 = Simulation::new(&g)
            .agent(cw(6), AgentSpec::immediate(NodeId::new(0)))
            .agent(cw(6), AgentSpec::immediate(NodeId::new(1)))
            .agent(Box::new(IdleAgent), AgentSpec::immediate(NodeId::new(3)))
            .meeting_condition(MeetingCondition::FirstPair)
            .run()
            .unwrap();
        assert_eq!(out2.meeting().unwrap().round, 2);
    }
}
