//! The adversary: exhaustive worst-case search over start positions and
//! wake-up delays.
//!
//! The paper's bounds are worst-case over "any two agents whose distinct
//! labels are from the label space … and whose initial positions are
//! arbitrary distinct nodes", with wake-up rounds chosen by the adversary.
//! On finite instances the adversary is *exactly realized* by enumerating
//! all ordered pairs of distinct start nodes and all delays from a supplied
//! set (for the paper's algorithms, delays beyond `E + 1` are equivalent to
//! `E + 1`: the earlier agent's first exploration finds the sleeping agent).
//!
//! The search is embarrassingly parallel; we shard start pairs across
//! threads with crossbeam's scoped threads.

use crate::{AgentBehavior, AgentSpec, Simulation};
use crossbeam::thread;
use rendezvous_graph::{NodeId, PortLabeledGraph};

/// What the adversary maximizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Rounds from the earlier agent's start to the meeting.
    Time,
    /// Total edge traversals until the meeting.
    Cost,
}

/// A worst case found by [`worst_case_search`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorstCase {
    /// The maximized objective value.
    pub value: u64,
    /// Time of the worst execution (equals `value` for [`Objective::Time`]).
    pub time: u64,
    /// Cost of the worst execution (equals `value` for [`Objective::Cost`]).
    pub cost: u64,
    /// Start node of the first agent.
    pub start_a: NodeId,
    /// Start node of the second agent.
    pub start_b: NodeId,
    /// Delay (in rounds) applied to the second agent's wake-up.
    pub delay_b: u64,
}

/// Builds the two behaviors for one execution. Called once per adversarial
/// choice with the agents' start nodes, so position-aware behaviors (the
/// marked-map scenario) can be constructed correctly.
pub type BehaviorFactory<'a> =
    dyn Fn(NodeId, NodeId) -> (Box<dyn AgentBehavior + 'a>, Box<dyn AgentBehavior + 'a>)
        + Sync
        + 'a;

/// Exhaustively searches all ordered pairs of distinct start nodes and all
/// delays in `delays_b` (applied to the second agent), maximizing
/// `objective`. Returns the worst case, or `None` only for graphs with a
/// single node.
///
/// Executions that fail to meet within `max_rounds` are treated as worth
/// `u64::MAX` — a correctness violation the caller should treat as fatal
/// (tests do).
///
/// # Panics
///
/// Panics if an execution returns a simulation error (behaviors emitting
/// invalid moves are algorithm bugs, not adversarial outcomes).
#[must_use]
pub fn worst_case_search(
    graph: &PortLabeledGraph,
    factory: &BehaviorFactory<'_>,
    delays_b: &[u64],
    objective: Objective,
    max_rounds: u64,
    threads: usize,
) -> Option<WorstCase> {
    let n = graph.node_count();
    let pairs: Vec<(NodeId, NodeId)> = (0..n)
        .flat_map(|a| {
            (0..n)
                .filter(move |&b| b != a)
                .map(move |b| (NodeId::new(a), NodeId::new(b)))
        })
        .collect();
    if pairs.is_empty() {
        return None;
    }
    let threads = threads.clamp(1, pairs.len());
    let chunk = pairs.len().div_ceil(threads);
    let results = thread::scope(|s| {
        let mut handles = Vec::new();
        for shard in pairs.chunks(chunk) {
            handles.push(s.spawn(move |_| {
                let mut best: Option<WorstCase> = None;
                for &(pa, pb) in shard {
                    for &delay in delays_b {
                        let (ba, bb) = factory(pa, pb);
                        let out = Simulation::new(graph)
                            .agent(ba, AgentSpec::immediate(pa))
                            .agent(bb, AgentSpec::delayed(pb, delay))
                            .max_rounds(max_rounds)
                            .run()
                            .unwrap_or_else(|e| panic!("adversary execution failed: {e}"));
                        let (time, cost) = match out.time() {
                            Some(t) => (t, out.cost()),
                            None => (u64::MAX, u64::MAX),
                        };
                        let value = match objective {
                            Objective::Time => time,
                            Objective::Cost => cost,
                        };
                        if best.is_none_or(|b| value > b.value) {
                            best = Some(WorstCase {
                                value,
                                time,
                                cost,
                                start_a: pa,
                                start_b: pb,
                                delay_b: delay,
                            });
                        }
                    }
                }
                best
            }));
        }
        handles
            .into_iter()
            .filter_map(|h| h.join().expect("worker panicked"))
            .max_by_key(|w| w.value)
    })
    .expect("crossbeam scope");
    results
}

/// Convenience wrapper: simultaneous start (`delays_b = [0]`).
#[must_use]
pub fn worst_case_simultaneous(
    graph: &PortLabeledGraph,
    factory: &BehaviorFactory<'_>,
    objective: Objective,
    max_rounds: u64,
    threads: usize,
) -> Option<WorstCase> {
    worst_case_search(graph, factory, &[0], objective, max_rounds, threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Action, ScriptedAgent};
    use rendezvous_graph::{generators, Port};

    /// Walker (clockwise forever, scripted long enough) vs idler.
    fn walker_idler_factory<'a>() -> Box<BehaviorFactory<'a>> {
        Box::new(|_pa, _pb| {
            (
                Box::new(ScriptedAgent::new(vec![Action::Move(Port::new(0)); 512])),
                Box::new(ScriptedAgent::new(vec![])),
            )
        })
    }

    #[test]
    fn worst_case_time_of_walker_vs_idler_is_ring_length_minus_one() {
        let g = generators::oriented_ring(8).unwrap();
        let f = walker_idler_factory();
        let w = worst_case_simultaneous(&g, f.as_ref(), Objective::Time, 1_000, 4).unwrap();
        // The adversary places the idler just behind the walker: n-1 steps.
        assert_eq!(w.value, 7);
        assert_eq!(w.cost, 7);
        assert_eq!(
            (w.start_b.index() + 8 - w.start_a.index()) % 8,
            7,
            "worst placement is one step counter-clockwise"
        );
    }

    #[test]
    fn delays_do_not_help_against_an_idler() {
        let g = generators::oriented_ring(6).unwrap();
        let f = walker_idler_factory();
        let with_delay =
            worst_case_search(&g, f.as_ref(), &[0, 3, 10], Objective::Time, 1_000, 2).unwrap();
        // The walker starts at round 1 regardless; the idler sleeps anyway.
        assert_eq!(with_delay.value, 5);
    }

    #[test]
    fn objective_cost_vs_time_can_differ() {
        // Walker vs walker-then-idler: cost counts both agents' moves.
        let g = generators::oriented_ring(6).unwrap();
        let f: Box<BehaviorFactory<'_>> = Box::new(|_, _| {
            (
                Box::new(ScriptedAgent::new(vec![Action::Move(Port::new(0)); 512])),
                Box::new(ScriptedAgent::new(vec![Action::Move(Port::new(0)); 512])),
            )
        });
        // Two clockwise walkers at distance d never meet... except they do
        // not: same speed, same direction. With max_rounds they never meet;
        // the adversary reports u64::MAX, surfacing non-meeting loudly.
        let w = worst_case_simultaneous(&g, f.as_ref(), Objective::Cost, 64, 2).unwrap();
        assert_eq!(w.value, u64::MAX);
    }

    #[test]
    fn single_thread_matches_parallel() {
        let g = generators::oriented_ring(7).unwrap();
        let f = walker_idler_factory();
        let w1 = worst_case_search(&g, f.as_ref(), &[0, 1], Objective::Time, 500, 1).unwrap();
        let w8 = worst_case_search(&g, f.as_ref(), &[0, 1], Objective::Time, 500, 8).unwrap();
        assert_eq!(w1.value, w8.value);
    }
}
