//! What an agent *is*, computationally: a deterministic reaction to local
//! observations.

use rendezvous_graph::Port;
use serde::{Deserialize, Serialize};

/// Everything an agent perceives at the start of a round (paper §1.2):
/// its own clock, the degree of the node it occupies, and — if it moved
/// last round — the port through which it entered.
///
/// Node identities are deliberately absent: the network is anonymous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Observation {
    /// Number of rounds this agent has already executed (0 on the first
    /// call after wake-up). The paper's local clock "ticks at each round
    /// and starts at the wake-up round of the agent".
    pub local_round: u64,
    /// Degree of the currently occupied node.
    pub degree: usize,
    /// Port through which the agent entered this node on the previous
    /// round; `None` on the first round or if it stayed put.
    pub entry_port: Option<Port>,
}

/// The decision an agent makes each round: stay, or leave through a port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Action {
    /// Remain at the current node this round.
    Stay,
    /// Traverse the edge with this local port number.
    Move(Port),
}

impl Action {
    /// Returns `true` if the action is a move.
    #[must_use]
    pub fn is_move(self) -> bool {
        matches!(self, Action::Move(_))
    }
}

/// A deterministic mobile agent: called once per round with its local
/// [`Observation`], answers with an [`Action`].
///
/// Implementations must be deterministic functions of the observation
/// history (plus construction-time inputs such as the agent's label and the
/// exploration procedure) — this is what makes the rendezvous problem
/// non-trivial and is assumed by every proof in the paper.
pub trait AgentBehavior {
    /// Decides this round's action.
    fn next_action(&mut self, observation: Observation) -> Action;
}

/// An agent that never moves. Useful as a baseline and in engine tests; on
/// its own it can never solve rendezvous (both agents idle = no meeting),
/// which is the symmetry-breaking point the paper makes about labels.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdleAgent;

impl AgentBehavior for IdleAgent {
    fn next_action(&mut self, _observation: Observation) -> Action {
        Action::Stay
    }
}

/// An agent replaying a fixed script of actions, then idling. The engine
/// and adversary tests use scripted agents to pin down exact semantics
/// (crossing on an edge, simultaneous arrival, wake-up delays).
#[derive(Debug, Clone)]
pub struct ScriptedAgent {
    script: Vec<Action>,
    at: usize,
}

impl ScriptedAgent {
    /// Creates an agent that performs `script` in order and then stays.
    #[must_use]
    pub fn new(script: Vec<Action>) -> Self {
        ScriptedAgent { script, at: 0 }
    }
}

impl AgentBehavior for ScriptedAgent {
    fn next_action(&mut self, _observation: Observation) -> Action {
        let a = self.script.get(self.at).copied().unwrap_or(Action::Stay);
        self.at += 1;
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_agent_replays_then_stays() {
        let mut a = ScriptedAgent::new(vec![Action::Move(Port::new(0)), Action::Stay]);
        let obs = Observation {
            local_round: 0,
            degree: 2,
            entry_port: None,
        };
        assert_eq!(a.next_action(obs), Action::Move(Port::new(0)));
        assert_eq!(a.next_action(obs), Action::Stay);
        assert_eq!(a.next_action(obs), Action::Stay);
    }

    #[test]
    fn idle_agent_always_stays() {
        let mut a = IdleAgent;
        for r in 0..5 {
            let obs = Observation {
                local_round: r,
                degree: 3,
                entry_port: None,
            };
            assert_eq!(a.next_action(obs), Action::Stay);
        }
    }

    #[test]
    fn action_is_move() {
        assert!(Action::Move(Port::new(1)).is_move());
        assert!(!Action::Stay.is_move());
    }
}
