//! Solo executions `α(x, p, ⊥, ⊥)`: one agent running its algorithm alone.
//!
//! The lower-bound machinery of §3 is built entirely on solo executions —
//! an agent's *behaviour vector* is defined by what it does when no other
//! agent is present, and (by determinism) its behaviour in a real execution
//! coincides with its solo behaviour until the meeting round.

use crate::{Action, AgentBehavior, Observation, SimError};
use rendezvous_graph::{NodeId, Port, PortLabeledGraph};

/// History of a solo execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SoloTrace {
    /// Node occupied at the end of round `r` (`positions[0]` = start).
    pub positions: Vec<NodeId>,
    /// Action taken in round `r + 1`.
    pub actions: Vec<Action>,
}

impl SoloTrace {
    /// Total number of edge traversals.
    #[must_use]
    pub fn cost(&self) -> u64 {
        self.actions.iter().filter(|a| a.is_move()).count() as u64
    }

    /// Number of rounds executed.
    #[must_use]
    pub fn rounds(&self) -> usize {
        self.actions.len()
    }
}

/// Runs `behavior` alone on `graph` from `start` for exactly `rounds`
/// rounds.
///
/// # Errors
///
/// * [`SimError::StartOutOfRange`] for a bad start node,
/// * [`SimError::InvalidMove`] if the behavior emits a non-existent port.
pub fn run_solo(
    graph: &PortLabeledGraph,
    behavior: &mut dyn AgentBehavior,
    start: NodeId,
    rounds: u64,
) -> Result<SoloTrace, SimError> {
    if !graph.contains(start) {
        return Err(SimError::StartOutOfRange { node: start });
    }
    let mut positions = Vec::with_capacity(rounds as usize + 1);
    positions.push(start);
    let mut actions = Vec::with_capacity(rounds as usize);
    let mut at = start;
    let mut entry: Option<Port> = None;
    for round in 1..=rounds {
        let obs = Observation {
            local_round: round - 1,
            degree: graph.degree(at),
            entry_port: entry,
        };
        let a = behavior.next_action(obs);
        match a {
            Action::Stay => entry = None,
            Action::Move(p) => {
                if p.index() >= graph.degree(at) {
                    return Err(SimError::InvalidMove {
                        agent: 0,
                        round,
                        port: p,
                        degree: graph.degree(at),
                    });
                }
                let t = graph.traverse(at, p)?;
                at = t.target;
                entry = Some(t.entry_port);
            }
        }
        positions.push(at);
        actions.push(a);
    }
    Ok(SoloTrace { positions, actions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScriptedAgent;
    use rendezvous_graph::generators;

    #[test]
    fn solo_walk_positions() {
        let g = generators::oriented_ring(4).unwrap();
        let mut a = ScriptedAgent::new(vec![
            Action::Move(Port::new(0)),
            Action::Stay,
            Action::Move(Port::new(0)),
        ]);
        let t = run_solo(&g, &mut a, NodeId::new(1), 5).unwrap();
        assert_eq!(
            t.positions,
            vec![
                NodeId::new(1),
                NodeId::new(2),
                NodeId::new(2),
                NodeId::new(3),
                NodeId::new(3),
                NodeId::new(3),
            ]
        );
        assert_eq!(t.cost(), 2);
        assert_eq!(t.rounds(), 5);
    }

    #[test]
    fn solo_rejects_bad_start() {
        let g = generators::oriented_ring(4).unwrap();
        let mut a = ScriptedAgent::new(vec![]);
        assert!(run_solo(&g, &mut a, NodeId::new(10), 1).is_err());
    }

    #[test]
    fn solo_surfaces_invalid_move() {
        let g = generators::path(2).unwrap();
        let mut a = ScriptedAgent::new(vec![Action::Move(Port::new(3))]);
        assert!(matches!(
            run_solo(&g, &mut a, NodeId::new(0), 1),
            Err(SimError::InvalidMove { .. })
        ));
    }
}
