//! Error type for simulation setup and execution.

use rendezvous_graph::{GraphError, NodeId, Port};
use std::error::Error;
use std::fmt;

/// Errors raised while configuring or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// Fewer than two agents were configured.
    TooFewAgents {
        /// How many were configured.
        got: usize,
    },
    /// Two agents were placed on the same start node; the problem statement
    /// requires distinct starting positions.
    StartsNotDistinct {
        /// The shared node.
        node: NodeId,
    },
    /// A start node is not a node of the graph.
    StartOutOfRange {
        /// The offending node.
        node: NodeId,
    },
    /// Wake-up rounds are 1-based; 0 is not a round.
    InvalidWakeRound,
    /// The simulation requires a connected graph (otherwise rendezvous can
    /// be impossible regardless of algorithm).
    NotConnected,
    /// An agent emitted a move through a non-existent port — an algorithm
    /// bug surfaced by the engine rather than silently ignored.
    InvalidMove {
        /// Index of the offending agent (configuration order).
        agent: usize,
        /// Global round of the bad decision.
        round: u64,
        /// The invalid port.
        port: Port,
        /// Degree of the node the agent was at.
        degree: usize,
    },
    /// Graph navigation failed (wraps [`GraphError`]).
    Graph(GraphError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::TooFewAgents { got } => {
                write!(f, "simulation needs at least 2 agents, got {got}")
            }
            SimError::StartsNotDistinct { node } => {
                write!(f, "agents must start at distinct nodes (both at {node})")
            }
            SimError::StartOutOfRange { node } => write!(f, "start node {node} out of range"),
            SimError::InvalidWakeRound => write!(f, "wake-up rounds are 1-based (got 0)"),
            SimError::NotConnected => write!(f, "simulation requires a connected graph"),
            SimError::InvalidMove {
                agent,
                round,
                port,
                degree,
            } => write!(
                f,
                "agent {agent} emitted invalid move {port} (degree {degree}) in round {round}"
            ),
            SimError::Graph(e) => write!(f, "graph error: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for SimError {
    fn from(e: GraphError) -> Self {
        SimError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        let e = SimError::InvalidMove {
            agent: 1,
            round: 7,
            port: Port::new(5),
            degree: 2,
        };
        let s = e.to_string();
        assert!(s.contains("agent 1") && s.contains("p5") && s.contains("round 7"));
    }
}
